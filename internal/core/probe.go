package core

import (
	"fmt"
	"io"
	"strings"

	"rocksim/internal/obs"
)

// Probe observes the SST core cycle by cycle, for pipeline visualization
// and debugging. All hooks are optional-cost: nothing is computed when
// no probe is installed.
//
// Probe predates the unified observability layer; it is kept for
// backward compatibility and routed through an obs.Sink adapter (see
// ProbeSink). New instrumentation should use SetSink directly.
type Probe interface {
	// CycleState is called at the end of every cycle with the mode and
	// per-strand progress.
	CycleState(now uint64, mode Mode, executed, replayed, dq, ssb, ckpts, pend int)
	// Event is called at significant microarchitectural events.
	Event(now uint64, kind, detail string)
}

// sstOccNames names the occupancy channels the SST core reports to its
// sink, in CycleState occ order.
var sstOccNames = []string{"dq", "ssb", "ckpts", "pend"}

// SetSink installs (or clears, with nil) the core's observability sink.
func (c *Core) SetSink(s obs.Sink) {
	c.sink = s
	if s != nil {
		s.Attach("sst", sstOccNames)
	}
}

// Sink returns the installed sink (nil when observation is disabled).
func (c *Core) Sink() obs.Sink { return c.sink }

// SetProbe installs (or clears, with nil) a legacy probe, routed through
// the obs.Sink adapter.
func (c *Core) SetProbe(p Probe) {
	if p == nil {
		c.SetSink(nil)
		return
	}
	c.SetSink(ProbeSink(p))
}

// ProbeSink adapts a legacy Probe to the obs.Sink interface: cycle
// state and instantaneous events are forwarded, span traffic is dropped
// (the probe API has no notion of durations).
func ProbeSink(p Probe) obs.Sink { return probeSink{p} }

type probeSink struct{ p Probe }

func (s probeSink) Attach(string, []string) {}

func (s probeSink) CycleState(now uint64, mode string, executed, replayed int, occ []int) {
	var o [4]int
	copy(o[:], occ)
	s.p.CycleState(now, modeByName(mode), executed, replayed, o[0], o[1], o[2], o[3])
}

func (s probeSink) Event(now uint64, cat, name, detail string) { s.p.Event(now, name, detail) }

func (s probeSink) SpanBegin(uint64, string, string, uint64) {}
func (s probeSink) SpanEnd(uint64, string, uint64)           {}
func (s probeSink) Span(uint64, uint64, string, string)      {}

func modeByName(s string) Mode {
	switch s {
	case "spec":
		return ModeSpec
	case "scout":
		return ModeScout
	}
	return ModeNormal
}

// PipeView is a Probe that renders a compact one-line-per-cycle pipeline
// trace, in the spirit of pipetrace viewers:
//
//	cycle   mode  A R |DQ......  |SSB..    |CK##    events
//
// A/R columns show ahead-strand and replay-strand instruction counts for
// the cycle; the bars show queue occupancies.
type PipeView struct {
	W io.Writer
	// MaxCycles stops output after this many cycles (0 = unlimited).
	MaxCycles uint64
	// OnlyEvents suppresses per-cycle lines, printing events only.
	OnlyEvents bool

	lines uint64
	done  bool // cap reached: short-circuit all further work
}

// CycleState implements Probe.
func (v *PipeView) CycleState(now uint64, mode Mode, executed, replayed, dq, ssb, ckpts, pend int) {
	if v.done || v.OnlyEvents {
		return
	}
	if v.MaxCycles > 0 && now >= v.MaxCycles {
		v.done = true
		return
	}
	bar := func(n, width int) string {
		if n > width {
			n = width
		}
		return strings.Repeat("#", n) + strings.Repeat(".", width-n)
	}
	fmt.Fprintf(v.W, "%8d %-7s A%d R%d |DQ%s|SSB%s|CK%s|M%d\n",
		now, mode, executed, replayed,
		bar(dq/4, 16), bar(ssb/2, 8), bar(ckpts, 4), pend)
	v.lines++
}

// Event implements Probe.
func (v *PipeView) Event(now uint64, kind, detail string) {
	if v.done {
		return
	}
	if v.MaxCycles > 0 && now >= v.MaxCycles {
		v.done = true
		return
	}
	fmt.Fprintf(v.W, "%8d * %-10s %s\n", now, kind, detail)
}
