package core

import (
	"fmt"
	"io"
	"strings"
)

// Probe observes the SST core cycle by cycle, for pipeline visualization
// and debugging. All hooks are optional-cost: nothing is computed when
// no probe is installed.
type Probe interface {
	// CycleState is called at the end of every cycle with the mode and
	// per-strand progress.
	CycleState(now uint64, mode Mode, executed, replayed, dq, ssb, ckpts, pend int)
	// Event is called at significant microarchitectural events.
	Event(now uint64, kind, detail string)
}

// SetProbe installs (or clears, with nil) the core's probe.
func (c *Core) SetProbe(p Probe) { c.probe = p }

func (c *Core) probeEvent(kind, detail string) {
	if c.probe != nil {
		c.probe.Event(c.cycle, kind, detail)
	}
}

// PipeView is a Probe that renders a compact one-line-per-cycle pipeline
// trace, in the spirit of pipetrace viewers:
//
//	cycle   mode  A R |DQ......  |SSB..    |CK##    events
//
// A/R columns show ahead-strand and replay-strand instruction counts for
// the cycle; the bars show queue occupancies.
type PipeView struct {
	W io.Writer
	// MaxCycles stops output after this many cycles (0 = unlimited).
	MaxCycles uint64
	// OnlyEvents suppresses per-cycle lines, printing events only.
	OnlyEvents bool

	lines uint64
}

// CycleState implements Probe.
func (v *PipeView) CycleState(now uint64, mode Mode, executed, replayed, dq, ssb, ckpts, pend int) {
	if v.OnlyEvents || (v.MaxCycles > 0 && now >= v.MaxCycles) {
		return
	}
	bar := func(n, width int) string {
		if n > width {
			n = width
		}
		return strings.Repeat("#", n) + strings.Repeat(".", width-n)
	}
	fmt.Fprintf(v.W, "%8d %-7s A%d R%d |DQ%s|SSB%s|CK%s|M%d\n",
		now, mode, executed, replayed,
		bar(dq/4, 16), bar(ssb/2, 8), bar(ckpts, 4), pend)
	v.lines++
}

// Event implements Probe.
func (v *PipeView) Event(now uint64, kind, detail string) {
	if v.MaxCycles > 0 && now >= v.MaxCycles {
		return
	}
	fmt.Fprintf(v.W, "%8d * %-10s %s\n", now, kind, detail)
}
