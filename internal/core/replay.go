package core

import (
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// replay runs the deferred strand for one cycle: it walks the Deferred
// Queue in program order and executes up to budget entries whose
// operands have resolved. Entries that are still waiting stay in the
// queue (hardware re-defers them). Memory ordering is enforced without a
// disambiguation CAM: loads replay optimistically and join the read set;
// a store whose address resolves later verifies against that read set
// and fails speculation on a true conflict; store-to-store order is
// preserved by the sequence-sorted SSB.
//
// Deferred branches are verified here; a misprediction rolls the machine
// back to the enclosing checkpoint. Returns the number of entries
// replayed this cycle.
func (c *Core) replay(now uint64, budget int) int {
	replayed := 0
	for replayed < budget && c.mode == ModeSpec && len(c.dq) > 0 {
		idx, vals, ok := c.nextReplayable()
		if !ok {
			break
		}
		e := c.dq[idx]
		// Remove the entry before executing it so a rollback triggered
		// by the entry itself sees a consistent queue.
		c.dq = append(c.dq[:idx], c.dq[idx+1:]...)
		c.dqReady--
		c.resolveDirty = true
		if e.in.Op.IsStore() {
			c.dqStores--
		}
		rolledBack := c.replayEntry(&e, vals, now)
		replayed++
		c.stats.Replays++
		if rolledBack {
			break
		}
	}
	return replayed
}

// nextReplayable finds the oldest DQ entry whose operands have all
// resolved. Resolved values are forwarded into waiting entries at
// delivery time (see forward), so readiness is a pure NA-flag scan.
// There is no ordering gate between deferred memory operations: loads
// replay optimistically (joining the read set) and stores — whose SSB
// slots are sequence-sorted — verify against the read set when their
// addresses resolve, rolling back on a true conflict. Independent miss
// chains therefore replay fully in parallel.
func (c *Core) nextReplayable() (idx int, vals [3]int64, ok bool) {
	if c.dqReady == 0 {
		return 0, vals, false
	}
	for i := range c.dq {
		e := &c.dq[i]
		if e.isNA[0] || e.isNA[1] || e.isNA[2] {
			continue
		}
		return i, e.vals, true
	}
	return 0, vals, false
}

// forward broadcasts a freshly resolved value to every DQ entry waiting
// on the producing sequence number, clearing the operand's NA flag. This
// is the DQ half of the hardware's fill broadcast (deliverRF is the
// register-file half): values land in consumers when they resolve, so
// the replay scan never needs a seq→value lookup table. An entry
// deferred after its producer resolved cannot exist — deferral captures
// a dependence only while the register's NA bit is set, and delivery
// clears that bit everywhere (including checkpoint copies) before any
// later instruction can observe it.
func (c *Core) forward(seq uint64, v int64) {
	for i := range c.dq {
		e := &c.dq[i]
		cleared := false
		for s := 0; s < e.nsrc; s++ {
			if e.isNA[s] && e.dep[s] == seq {
				e.vals[s] = v
				e.isNA[s] = false
				cleared = true
			}
		}
		if cleared && !(e.isNA[0] || e.isNA[1] || e.isNA[2]) {
			c.dqReady++
		}
	}
}

// replayEntry executes one resolved DQ entry (already dequeued).
// It reports whether the entry failed speculation and rolled back.
func (c *Core) replayEntry(e *dqEntry, vals [3]int64, now uint64) (rolledBack bool) {
	in := e.in
	switch in.Op.Class() {
	case isa.ClassALU:
		v := isa.ALUResult(in, vals[0], vals[1])
		c.forward(e.seq, v)
		c.deliverRF(e.seq, in.Rd, v, now)

	case isa.ClassLoad:
		addr := uint64(vals[0] + int64(in.Imm))
		size := in.Op.MemWidth()
		// Optimistic with respect to older unreplayed stores: join the
		// read set so they can verify against this load.
		c.readSet = append(c.readSet, readRec{seq: e.seq, addr: addr, size: size})
		if c.secureReplayLoad(e, addr, size, now) {
			return false
		}
		raw := c.composeLoad(addr, size, e.seq)
		v := isa.ExtendLoad(in.Op, raw)
		res := c.m.Hier.AccessLoad(c.m.CoreID, addr, e.pc, now)
		c.stats.Loads++
		c.stats.CountLoadLevel(res.Level)
		c.noteSpecAccess(addr, e.seq, res)
		if c.isMiss(res, now) {
			// A dependent miss: becomes a pending result; consumers in
			// the DQ keep waiting on this seq.
			if len(c.pend) == 0 || res.Ready < c.pendMin {
				c.pendMin = res.Ready
			}
			c.pend = append(c.pend, pendingResult{seq: e.seq, rd: in.Rd, val: v, ready: res.Ready})
			c.stats.PendingMisses++
			return false
		}
		c.forward(e.seq, v)
		c.deliverRF(e.seq, in.Rd, v, now)

	case isa.ClassStore:
		addr := uint64(vals[0] + int64(in.Imm))
		if c.readSetConflict(e.seq, addr, in.Op.MemWidth()) {
			// A younger speculative load read this location before the
			// store resolved: it consumed stale data. Roll back to the
			// store's epoch (the store re-executes too).
			c.rollback(c.epochOf(e.seq), now, RbMemOrder)
			return true
		}
		if !c.ssbInsert(ssbEntry{seq: e.seq, addr: addr, size: in.Op.MemWidth(), val: vals[1]}) {
			// SSB overflow during replay cannot resolve by waiting
			// (draining needs this epoch to commit): fail speculation.
			c.rollback(c.epochOf(e.seq), now, RbSSB)
			return true
		}
		if c.cfg.SecureDelayOnMiss || c.cfg.SecureEagerSSBFlush {
			// A replayed store's address may be secret-derived: its
			// prefetch is the classic transmitter. Suppress it.
			c.stats.SecurePrefetchDenied++
		} else {
			res := c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
			c.noteSpecAccess(addr, e.seq, res)
		}

	case isa.ClassBranch:
		taken := isa.BranchTaken(in.Op, vals[0], vals[1])
		mis := taken != e.predTaken
		// Deferred branches train at replay resolution, with the history
		// the predictor holds NOW — not the fetch-time history (see the
		// training rule in package bpred). On a mispredict the rollback
		// below restores the checkpointed fetch-path history afterwards.
		c.m.Pred.TrainDeferredDir(e.pc, taken, mis)
		if mis {
			c.stats.DeferredBranchMispred++
			c.stats.BranchMispred++
			c.rollback(c.epochOf(e.seq), now, RbBranch)
			return true
		}

	case isa.ClassJump: // deferred jalr target verification
		target := uint64(vals[0] + int64(in.Imm))
		c.m.Pred.TrainDeferredTarget(e.pc, target)
		if target != e.predTarget {
			c.stats.BranchMispred++
			c.rollback(c.epochOf(e.seq), now, RbJalr)
			return true
		}
	}
	// Stores, branches and jumps produce no register value (the jalr
	// link register is written at defer time), so nothing waits on their
	// sequence numbers and there is no value to forward.
	return false
}
