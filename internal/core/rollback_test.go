package core

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/faults"
	"rocksim/internal/isa"
)

// specScenario builds a core, runs it into live speculation — an open
// epoch with a speculatively written register, an NA destination, and a
// buffered store in the SSB — and returns it poised for a rollback.
func specScenario(t *testing.T) *Core {
	t.Helper()
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)  // miss -> checkpoint, r6 NA
		b.Movi(7, 99)              // speculative register write
		b.St(isa.OpSt64, 7, 5, 64) // speculative store -> SSB
		b.Opi(isa.OpAddi, 8, 6, 1) // NA-dependent -> DQ
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool {
		return c.Mode() == ModeSpec && c.regs[7] == 99 && len(c.ssb) > 0 && len(c.dq) > 0
	})
	return c
}

// TestRollbackRestoresStateAllCauses: for every RollbackCause, rolling
// back the epoch restores the checkpointed register file and NA bits,
// drops the speculative SSB and DQ contents, attributes the cause, and
// redirects execution to the checkpoint PC.
func TestRollbackRestoresStateAllCauses(t *testing.T) {
	for cause := RollbackCause(0); cause < NumRollbackCauses; cause++ {
		t.Run(cause.String(), func(t *testing.T) {
			c := specScenario(t)
			ck := c.ckpts[0]
			if c.regs == ck.regs {
				t.Fatal("scenario did not dirty the register file")
			}
			discardedBefore := c.processed - ck.processed
			c.rollback(0, c.cycle, cause)

			if c.regs != ck.regs {
				t.Error("register file not restored to checkpoint")
			}
			if c.na != ck.na {
				t.Error("NA bits not restored to checkpoint")
			}
			for _, e := range c.ssb {
				if e.seq >= ck.startSeq {
					t.Errorf("speculative SSB entry (seq %d) survived rollback", e.seq)
				}
			}
			for _, e := range c.dq {
				if e.seq >= ck.startSeq {
					t.Errorf("speculative DQ entry (seq %d) survived rollback", e.seq)
				}
			}
			if c.Mode() != ModeNormal {
				t.Errorf("mode after full rollback = %v, want ModeNormal", c.Mode())
			}
			if got := c.Stats().RollbacksBy[cause]; got != 1 {
				t.Errorf("RollbacksBy[%v] = %d, want 1", cause, got)
			}
			if got := c.Stats().DiscardedInsts; got != discardedBefore {
				t.Errorf("DiscardedInsts = %d, want %d", got, discardedBefore)
			}
			if !c.forceProgress || c.forceProgressPC != ck.pc {
				t.Errorf("forceProgress pc = %#x, want checkpoint pc %#x", c.forceProgressPC, ck.pc)
			}

			// The rolled-back program must still complete architecturally.
			run(t, c, 50_000)
			if c.regs[7] != 99 {
				t.Errorf("r7 = %d after re-execution, want 99", c.regs[7])
			}
			if c.Retired() != 6 {
				t.Errorf("retired = %d, want 6", c.Retired())
			}
		})
	}
}

// TestInjectedRollbackThroughPlan: a fault plan's spurious-rollback
// event fires through the injector hook in Step, is attributed to
// RbInjected, and leaves architectural results intact.
func TestInjectedRollbackThroughPlan(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Movi(7, 99)
		b.Halt()
	})
	plan := &faults.Plan{Events: []faults.Event{{Kind: faults.Rollback, From: 0}}}
	c.SetFaults(plan.New(nil))
	run(t, c, 50_000)
	if got := c.Stats().RollbacksBy[RbInjected]; got != 1 {
		t.Errorf("RollbacksBy[RbInjected] = %d, want 1", got)
	}
	if c.regs[7] != 99 || c.Retired() != 4 {
		t.Errorf("architectural state wrong after injected rollback: r7=%d retired=%d",
			c.regs[7], c.Retired())
	}
}
