package core

import (
	"fmt"
	"strings"
)

// DebugDump renders the core's speculative state for diagnostics.
func (c *Core) DebugDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d mode=%v seq=%d pc=%#x processed=%d\n",
		c.cycle, c.mode, c.seq, c.fe.PC(), c.processed)
	fmt.Fprintf(&b, "ckpts=%d:", len(c.ckpts))
	for _, ck := range c.ckpts {
		fmt.Fprintf(&b, " {start=%d pc=%#x}", ck.startSeq, ck.pc)
	}
	fmt.Fprintf(&b, "\ndq=%d:", len(c.dq))
	for i, e := range c.dq {
		if i >= 8 {
			fmt.Fprintf(&b, " ...")
			break
		}
		fmt.Fprintf(&b, " {%d %v pc=%#x", e.seq, e.in.Op, e.pc)
		for s := 0; s < e.nsrc; s++ {
			if e.isNA[s] {
				fmt.Fprintf(&b, " dep%d=%d", s, e.dep[s])
			}
		}
		fmt.Fprintf(&b, "}")
	}
	fmt.Fprintf(&b, "\npend=%d:", len(c.pend))
	for i, p := range c.pend {
		if i >= 8 {
			fmt.Fprintf(&b, " ...")
			break
		}
		fmt.Fprintf(&b, " {%d rd=%d ready=%d}", p.seq, p.rd, p.ready)
	}
	fmt.Fprintf(&b, "\nssb=%d dqStores=%d\n", len(c.ssb), c.dqStores)
	fmt.Fprintf(&b, "na:")
	for r := 0; r < len(c.na); r++ {
		if c.na[r] {
			fmt.Fprintf(&b, " r%d(w=%d)", r, c.lastWriter[r])
		}
	}
	return b.String()
}
