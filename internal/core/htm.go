package core

import (
	"fmt"

	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// ROCK's hardware transactional memory reuses the SST machinery: a
// transaction is a software-controlled speculation epoch. txbegin takes
// the register checkpoint, transactional stores wait in the speculative
// store buffer, the read set is tracked for remote-conflict detection,
// and an abort is a rollback whose "mispredicted branch" is the
// transaction itself. While a transaction is open the core runs in
// normal mode with the checkpoint hardware occupied — exactly ROCK's
// constraint that a strand has one checkpoint to spend — so cache misses
// inside a transaction stall on use rather than opening SST epochs.

// Transaction abort codes, delivered in txbegin's destination register.
const (
	TxAbortConflict    int64 = 1 // a remote store hit the read or write set
	TxAbortCapacity    int64 = 2 // read-set or store-buffer overflow
	TxAbortUnsupported int64 = 3 // cas/membar inside a transaction
	TxAbortNested      int64 = 4 // txbegin inside a transaction
)

// txMaxReadLines bounds the tracked read set, modeling the L1's
// speculative-read bits (512 lines = a 32KB L1's worth).
const txMaxReadLines = 512

// TxStats counts transactional events.
type TxStats struct {
	Begins       uint64
	Commits      uint64
	Aborts       uint64
	AbortsByCode [5]uint64
}

type txState struct {
	active   bool
	ckpt     checkpoint // register snapshot at txbegin
	handler  uint64     // abort target
	rd       uint8      // abort-code register
	startSeq uint64
	reads    map[uint64]struct{} // line-granular read set
	abort    int64               // pending abort code (0 = none)
}

// lineAddr aligns addr to the coherence line size.
func (c *Core) lineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.m.Hier.Config().L2.LineBytes) - 1)
}

// aheadTx handles txbegin/txcommit on the ahead strand.
func (c *Core) aheadTx(in isa.Inst, pc uint64, seq uint64, now uint64) (cont, redirected bool) {
	if c.mode != ModeNormal {
		// Serialize with SST speculation: wait until every epoch
		// commits (or scout rolls back) before touching transactions.
		c.stats.AtomicStallCycles++
		return false, false
	}
	if in.Op == isa.OpTxBegin {
		if c.tx.active {
			// Nesting is not supported: abort the outer transaction.
			c.tx.abort = TxAbortNested
			c.txAbort(now)
			return true, true
		}
		c.installInvalListener()
		c.tx = txState{
			active:   true,
			handler:  in.BranchTarget(pc),
			rd:       in.Rd,
			startSeq: seq,
			reads:    make(map[uint64]struct{}),
		}
		c.tx.ckpt = checkpoint{
			startSeq:   seq,
			pc:         pc,
			regs:       c.regs,
			na:         c.na,
			lastWriter: c.lastWriter,
			readyAt:    c.readyAt,
			ghr:        c.m.Pred.History(),
			processed:  c.processed,
		}
		c.write(in.Rd, 0, now+1, seq)
		c.stats.Tx.Begins++
		if c.sink != nil {
			c.sink.SpanBegin(now, "tx", "tx", seq)
			c.sink.Event(now, "tx", "txbegin", fmt.Sprintf("pc=%#x", pc))
		}
		return true, false
	}
	// txcommit.
	if !c.tx.active {
		return true, false // stray commit: architecturally a no-op
	}
	// Wait for in-flight reads to settle (scoreboarded misses resolve
	// by time; nothing else is outstanding in normal mode).
	c.drainSSB(^uint64(0), now)
	if c.sink != nil {
		c.sink.SpanEnd(now, "tx", c.tx.startSeq)
		c.sink.Event(now, "tx", "txcommit", "stores published")
	}
	c.tx.active = false
	c.tx.reads = nil
	c.stats.Tx.Commits++
	return true, false
}

// txAbort rolls architectural state back to the txbegin and transfers
// control to the handler with the abort code.
func (c *Core) txAbort(now uint64) {
	code := c.tx.abort
	ck := c.tx.ckpt
	c.regs = ck.regs
	c.na = ck.na
	c.lastWriter = ck.lastWriter
	c.readyAt = ck.readyAt
	c.m.Pred.SetHistory(ck.ghr)
	// The transaction's instructions executed in normal mode and were
	// counted as retired; the abort architecturally undoes them.
	c.stats.DiscardedInsts += c.processed - ck.processed
	c.stats.Retired -= c.processed - ck.processed
	c.processed = ck.processed
	// Drop the transaction's buffered stores.
	ssb := c.ssb[:0]
	for _, e := range c.ssb {
		if e.seq < c.tx.startSeq {
			ssb = append(ssb, e)
		}
	}
	c.ssb = ssb
	handler, rd := c.tx.handler, c.tx.rd
	if c.sink != nil {
		c.sink.SpanEnd(now, "tx", c.tx.startSeq)
		c.sink.Event(now, "tx", "txabort", fmt.Sprintf("code=%d", code))
	}
	c.tx = txState{}
	c.write(rd, code, now+1, c.seq)
	c.stats.Tx.Aborts++
	if code >= 0 && int(code) < len(c.stats.Tx.AbortsByCode) {
		c.stats.Tx.AbortsByCode[code]++
	}
	c.fe.Redirect(handler, now, c.cfg.RollbackPenalty)
}

// txTrackLoad records a transactional read and enforces the read-set
// capacity. Returns false if the transaction aborted.
func (c *Core) txTrackLoad(addr uint64, size int) bool {
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint64(size) - 1)
	for line := first; ; line += uint64(c.m.Hier.Config().L2.LineBytes) {
		c.tx.reads[line] = struct{}{}
		if line == last {
			break
		}
	}
	if len(c.tx.reads) > txMaxReadLines {
		c.tx.abort = TxAbortCapacity
		return false
	}
	return true
}

// txStore buffers a transactional store in the SSB. Returns false if the
// transaction aborted (capacity).
func (c *Core) txStore(seq uint64, addr uint64, size int, val int64, now uint64) bool {
	if !c.ssbInsert(ssbEntry{seq: seq, addr: addr, size: size, val: val}) {
		c.tx.abort = TxAbortCapacity
		return false
	}
	c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
	return true
}
