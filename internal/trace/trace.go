// Package trace records and replays executed-instruction traces. Traces
// are produced from the golden emulator (cmd/rkrun -trace) and are used
// for debugging core models, for workload characterization (paper
// Table 2), and as a compact interchange format.
//
// The binary format is a sequence of little-endian records:
//
//	magic   "RKTR" u32, version u32            (file header)
//	pc      u64
//	word    u64   (the encoded instruction)
//	addr    u64   (effective address for memory ops, else 0)
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rocksim/internal/isa"
)

const (
	magic   = 0x52544b52 // "RKTR"
	version = 1
)

// Record is one executed instruction.
type Record struct {
	PC   uint64
	Inst isa.Inst
	Addr uint64 // effective address for memory operations
}

// Writer streams trace records.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes a trace header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if t.err != nil {
		return t.err
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], r.PC)
	binary.LittleEndian.PutUint64(buf[8:], r.Inst.EncodeWord())
	binary.LittleEndian.PutUint64(buf[16:], r.Addr)
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush flushes buffered records.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader streams trace records back.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Read() (Record, error) {
	var buf [24]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	in, err := isa.DecodeWord(binary.LittleEndian.Uint64(buf[8:]))
	if err != nil {
		return Record{}, err
	}
	return Record{
		PC:   binary.LittleEndian.Uint64(buf[0:]),
		Inst: in,
		Addr: binary.LittleEndian.Uint64(buf[16:]),
	}, nil
}

// Summary aggregates a trace into the workload-characterization numbers
// reported in the reproduction's Table 2.
type Summary struct {
	Insts    uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Jumps    uint64
	Atomics  uint64
	LongOps  uint64
	// TouchedLines is the number of distinct 64-byte lines accessed by
	// data references (footprint proxy).
	TouchedLines uint64
}

// LoadPct returns loads as a percentage of instructions.
func (s Summary) LoadPct() float64 { return pct(s.Loads, s.Insts) }

// StorePct returns stores as a percentage of instructions.
func (s Summary) StorePct() float64 { return pct(s.Stores, s.Insts) }

// BranchPct returns conditional branches as a percentage of instructions.
func (s Summary) BranchPct() float64 { return pct(s.Branches, s.Insts) }

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Summarize consumes a reader and aggregates it.
func Summarize(r *Reader) (Summary, error) {
	var s Summary
	lines := make(map[uint64]struct{})
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return s, err
		}
		s.Insts++
		op := rec.Inst.Op
		switch {
		case op.IsLoad():
			s.Loads++
		case op.IsStore():
			s.Stores++
		case op.IsBranch():
			s.Branches++
		case op.IsJump():
			s.Jumps++
		case op.Class() == isa.ClassAtomic:
			s.Atomics++
		}
		if op.IsLongLatency() {
			s.LongOps++
		}
		if op.IsMem() && op.Class() != isa.ClassPrefetch {
			lines[rec.Addr>>6] = struct{}{}
		}
	}
	s.TouchedLines = uint64(len(lines))
	return s, nil
}

// Collector adapts a Writer into an emulator hook capturing effective
// addresses.
type Collector struct {
	W   *Writer
	Emu *isa.Emulator
	Err error
}

// Hook returns a function suitable for isa.Emulator.Hook. It must be
// installed on the same emulator passed here (register state is read to
// recompute effective addresses).
func (c *Collector) Hook() func(pc uint64, in isa.Inst) {
	return func(pc uint64, in isa.Inst) {
		if c.Err != nil {
			return
		}
		var addr uint64
		if in.Op.IsMem() {
			base := int64(0)
			if in.Rs1 != isa.RegZero {
				base = c.Emu.Reg[in.Rs1]
			}
			if in.Op.Class() == isa.ClassAtomic {
				addr = uint64(base)
			} else {
				addr = uint64(base + int64(in.Imm))
			}
		}
		c.Err = c.W.Write(Record{PC: pc, Inst: in, Addr: addr})
	}
}
