package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{PC: 0x1000, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3}},
		{PC: 0x1008, Inst: isa.Inst{Op: isa.OpLd64, Rd: 4, Rs1: 5, Imm: 16}, Addr: 0xbeef},
		{PC: 0x1010, Inst: isa.Inst{Op: isa.OpHalt}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Errorf("rec %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{PC: 8, Inst: isa.Inst{Op: isa.OpNop}})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("want truncation error, got %v", err)
	}
}

func TestCollectorAndSummary(t *testing.T) {
	prog, err := asm.Assemble(`
		.org 0x10000
		movi r1, 0x20000
		movi r2, 10
	loop:	ld64 r3, (r1)
		add  r4, r4, r3
		st64 r4, 8(r1)
		div  r5, r4, r2
		addi r1, r1, 64
		addi r2, r2, -1
		bne  r2, zero, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.Load(m)
	emu := isa.NewEmulator(prog.Entry, m)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	col := &Collector{W: w, Emu: emu}
	emu.Hook = col.Hook()
	if err := emu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if col.Err != nil {
		t.Fatal(col.Err)
	}
	w.Flush()

	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	s, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Insts != emu.Executed {
		t.Errorf("insts = %d, want %d", s.Insts, emu.Executed)
	}
	if s.Loads != 10 || s.Stores != 10 || s.Branches != 10 {
		t.Errorf("mix = %d/%d/%d", s.Loads, s.Stores, s.Branches)
	}
	if s.LongOps != 10 {
		t.Errorf("long ops = %d", s.LongOps)
	}
	// 10 iterations at 64B stride touch 10 distinct lines (the st64 at
	// +8 stays within the load's line).
	if s.TouchedLines != 10 {
		t.Errorf("touched lines = %d", s.TouchedLines)
	}
	if s.LoadPct() <= 0 || s.StorePct() <= 0 || s.BranchPct() <= 0 {
		t.Error("percent helpers zero")
	}
}
