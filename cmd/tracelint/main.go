// Command tracelint validates observability artifacts on real tool
// output, closing the loop the unit tests cannot: that what sstsim,
// sstbench, or a traced daemon actually wrote to disk honours the
// documented contracts.
//
//	tracelint -trace trace.json        # Chrome trace_event JSON
//	tracelint -report report.json      # sstsim -json cycle accounting
//	tracelint -trace t.json -report r.json
//
// A trace file must parse as Chrome trace JSON and every complete
// ("X") event must carry numeric ts, dur, pid, and tid — the fields
// chrome://tracing and Perfetto require to render a span at all.
//
// A report file must satisfy the cycle-accounting invariant: the
// cpi_stack buckets sum exactly to cycles (see docs/OBSERVABILITY.md).
// Exit status is non-zero on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	traceFile := flag.String("trace", "", "Chrome trace_event JSON file to validate")
	reportFile := flag.String("report", "", "sstsim -json report whose cpi_stack must sum to cycles")
	flag.Parse()
	if *traceFile == "" && *reportFile == "" {
		fmt.Fprintln(os.Stderr, "tracelint: nothing to do; pass -trace and/or -report")
		os.Exit(2)
	}
	if *traceFile != "" {
		if err := lintTrace(*traceFile); err != nil {
			fatal(err)
		}
		fmt.Printf("tracelint: %s ok\n", *traceFile)
	}
	if *reportFile != "" {
		if err := lintReport(*reportFile); err != nil {
			fatal(err)
		}
		fmt.Printf("tracelint: %s ok\n", *reportFile)
	}
}

// event models the fields every renderable trace event must carry.
// Pointers distinguish "absent" from a legitimate zero.
type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

func lintTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not Chrome trace JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return fmt.Errorf("%s: event %d: missing name or ph", path, i)
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("%s: event %d (%s): missing ts, pid, or tid", path, i, e.Name)
		}
		if e.Ph == "X" {
			if e.Dur == nil {
				return fmt.Errorf("%s: event %d (%s): complete event without dur", path, i, e.Name)
			}
			if *e.Dur < 1 {
				return fmt.Errorf("%s: event %d (%s): dur %v < 1µs renders as invisible", path, i, e.Name, *e.Dur)
			}
		}
	}
	return nil
}

func lintReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Kind     string            `json:"kind"`
		Cycles   uint64            `json:"cycles"`
		CPIStack map[string]uint64 `json:"cpi_stack"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: not a report JSON: %v", path, err)
	}
	if len(rep.CPIStack) == 0 {
		return fmt.Errorf("%s: report has no cpi_stack", path)
	}
	var sum uint64
	for k, v := range rep.CPIStack {
		// smt_idle is a sibling view of cycles another hardware thread
		// retired in; it is excluded from the sum invariant (see
		// internal/cpu/cpi.go CPISum).
		if k == "smt_idle" {
			continue
		}
		sum += v
	}
	if sum != rep.Cycles {
		return fmt.Errorf("%s: cpi_stack sums to %d but cycles is %d (kind %s)",
			path, sum, rep.Cycles, rep.Kind)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracelint:", err)
	os.Exit(1)
}
