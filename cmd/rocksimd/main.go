// Command rocksimd serves simulations over HTTP (see docs/SERVICE.md):
// one long-lived daemon hosts the experiments.Runner worker pool and
// content-addressed run cache, so clients share cached cells across
// requests instead of paying cold simulator runs.
//
// Usage:
//
//	rocksimd                          # listen on 127.0.0.1:8321
//	rocksimd -addr :9000 -j 8         # public port, 8 sim workers
//	rocksimd -queue 64 -timeout 60s   # deeper queue, per-cell watchdog
//
// SIGTERM/SIGINT drain gracefully: the listener stops accepting, new
// work is refused with 503, and the process exits 0 once every admitted
// request (including async grids) has finished.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/serve"
	"rocksim/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulation runs (worker pool)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "admission bound: run/grid requests in flight before 429")
	retryAfter := flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint on 429 responses")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog applied to every simulation cell (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Minute, "drain deadline for open connections after SIGTERM")
	flag.Parse()

	r := experiments.NewRunner()
	r.SetJobs(*jobs)
	if *timeout > 0 {
		opts := sim.DefaultOptions()
		opts.Timeout = *timeout
		r.SetBaseOptions(opts)
	}
	srv := serve.New(serve.Config{QueueDepth: *queue, RetryAfter: *retryAfter}, r)
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("rocksimd: signal received; draining")
		srv.StartDrain()
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Printf("rocksimd: shutdown: %v", err)
		}
	}()

	log.Printf("rocksimd: listening on %s (%d workers, queue %d)", *addr, *jobs, *queue)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rocksimd:", err)
		os.Exit(1)
	}
	// The HTTP listener is closed; wait for admitted work (async grids
	// included) so a drain never abandons a computation.
	srv.Wait()
	hits, misses := r.CacheStats()
	log.Printf("rocksimd: drained cleanly (cache %d hits / %d misses)", hits, misses)
}
