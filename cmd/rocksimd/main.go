// Command rocksimd serves simulations over HTTP (see docs/SERVICE.md):
// one long-lived daemon hosts the experiments.Runner worker pool and
// content-addressed run cache, so clients share cached cells across
// requests instead of paying cold simulator runs.
//
// Usage:
//
//	rocksimd                          # listen on 127.0.0.1:8321
//	rocksimd -addr :9000 -j 8         # public port, 8 sim workers
//	rocksimd -queue 64 -timeout 60s   # deeper queue, per-cell watchdog
//	rocksimd -trace -debug-addr 127.0.0.1:8322   # trace every request,
//	                                  # pprof on the side port
//
// Logs are structured (log/slog text format on stderr): request start
// and end lines carry the X-Request-ID, so a slow or failed request in
// the log pairs with its span tree from GET /v1/trace/{id}.
//
// SIGTERM/SIGINT drain gracefully: the listener stops accepting, new
// work is refused with 503, and the process exits 0 once every admitted
// request (including async grids) has finished.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served on -debug-addr only
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/serve"
	"rocksim/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	shardID := flag.String("shard-id", "", "name of this daemon within a fleet, echoed by /healthz (empty outside a fleet)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulation runs (worker pool)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "admission bound: run/grid requests in flight before 429")
	retryAfter := flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint on 429 responses")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog applied to every simulation cell (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Minute, "drain deadline for open connections after SIGTERM")
	trace := flag.Bool("trace", false, "trace every request (clients can also opt in per request with X-Trace: 1); span trees at GET /v1/trace/{id}")
	traceRing := flag.Int("trace-ring", serve.DefaultTraceRing, "finished traces retained for /v1/trace")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "rocksimd: bad -log-level:", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	r := experiments.NewRunner()
	r.SetJobs(*jobs)
	if *timeout > 0 {
		opts := sim.DefaultOptions()
		opts.Timeout = *timeout
		r.SetBaseOptions(opts)
	}
	srv := serve.New(serve.Config{
		ShardID:    *shardID,
		QueueDepth: *queue,
		RetryAfter: *retryAfter,
		Trace:      *trace,
		TraceRing:  *traceRing,
		Logger:     log,
	}, r)
	hs := &http.Server{Addr: *addr, Handler: srv}

	if *debugAddr != "" {
		// The pprof endpoints live on their own listener so profiling a
		// stuck daemon never competes with (or exposes itself to) API
		// traffic. net/http/pprof registered itself on DefaultServeMux.
		go func() {
			log.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Error("debug listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("signal received; draining")
		srv.StartDrain()
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Error("shutdown", "err", err)
		}
	}()

	log.Info("listening", "addr", *addr, "workers", *jobs, "queue", *queue, "trace", *trace)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rocksimd:", err)
		os.Exit(1)
	}
	// The HTTP listener is closed; wait for admitted work (async grids
	// included) so a drain never abandons a computation.
	srv.Wait()
	hits, misses := r.CacheStats()
	log.Info("drained cleanly", "cache_hits", hits, "cache_misses", misses)
}
