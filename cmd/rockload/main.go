// Command rockload load-tests a rocksimd daemon (see docs/SERVICE.md):
// it fires a deterministic mix of /v1/run cells from N concurrent
// clients, honours 429 backpressure by retrying after the server's
// hint, and reports request throughput, latency percentiles and the
// daemon's cache-hit rate as BENCH_serve.json.
//
// Usage:
//
//	rockload -self -n 200 -c 8 -o BENCH_serve.json    # in-process daemon
//	rockload -addr http://127.0.0.1:8321 -n 500 -c 16
//	rockload -check BENCH_serve.json                  # bench-guard mode
//	rockload -addr http://host:8321 -healthz          # readiness probe
//	rockload -addr http://host:8321 -scale test -grid-exps T1,F3 -grid-out grid.txt
//
// In -check mode a fresh self-hosted measurement is compared against
// the recorded baseline: under 80% of the baseline's requests/s, or a
// p95 latency above 120% of baseline (+5ms slack), fails the guard. A
// missing baseline file is a skip, not a failure — the numbers are
// machine-specific; regenerate with `make bench`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/serve"
	"rocksim/internal/serve/client"
	"rocksim/internal/sim"
)

// report is the recorded measurement (the BENCH_serve.json schema).
// The ttfb/compute/retry-wait keys were added later; old baselines
// without them still unmarshal, and the guard never reads them.
type report struct {
	N           int     `json:"n"`
	Concurrency int     `json:"concurrency"`
	Scale       string  `json:"scale"`
	WallMS      float64 `json:"wall_ms"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	// TTFB percentiles: client-side time to response headers, per
	// successful final attempt (excludes 429 retry sleeps).
	TTFBP50MS float64 `json:"ttfb_p50_ms"`
	TTFBP95MS float64 `json:"ttfb_p95_ms"`
	// Compute percentiles: the daemon's X-Compute-Us per request —
	// near zero on cache hits, so the spread shows the hit/miss split.
	ComputeP50MS float64 `json:"compute_p50_ms"`
	ComputeP95MS float64 `json:"compute_p95_ms"`
	// RetryWaitTotalMS sums every 429 Retry-After sleep across the run.
	RetryWaitTotalMS float64 `json:"retry_wait_total_ms"`
	Rejected429      int64   `json:"rejected_429"`
	Errors           int64   `json:"errors"`
	CacheHitPct      float64 `json:"cache_hit_pct"`
}

// loadWorkloads is the fixed cell mix: every core kind crossed with
// these workloads, cycled deterministically by request index, so a run
// of n requests always asks for the same n cells in the same order.
var loadWorkloads = []string{"chase", "oltp"}

func main() {
	addr := flag.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8321 (empty: use -self)")
	self := flag.Bool("self", false, "serve an in-process daemon on a loopback port and load that")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	scaleFlag := flag.String("scale", "test", "workload scale for the cell mix: test | full")
	out := flag.String("o", "", "write the measurement as JSON to this file ('-' = stdout)")
	check := flag.String("check", "", "compare a fresh -self measurement against this baseline JSON; missing file = skip")
	healthz := flag.Bool("healthz", false, "probe /healthz and exit")
	gridExps := flag.String("grid-exps", "", "fetch /v1/grid for these comma-separated experiments instead of load-testing")
	gridOut := flag.String("grid-out", "-", "write the fetched grid to this file ('-' = stdout)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: workers stop taking cells
	// and any in-progress 429 backoff sleep aborts immediately, so ^C
	// during a long Retry-After never hangs the process. A second signal
	// kills the process the default way (NotifyContext unregisters).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *check != "" {
		runCheck(ctx, *check, *n, *c, *scaleFlag)
		return
	}

	base := *addr
	var shutdown func()
	if base == "" || *self {
		var err error
		base, shutdown, err = startSelf(*c)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	cl := &client.Client{Base: base}

	switch {
	case *healthz:
		if err := cl.Healthz(); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case *gridExps != "":
		grid, err := cl.Grid(serve.GridRequest{Exps: strings.Split(*gridExps, ","), Scale: *scaleFlag})
		if err != nil {
			fatal(err)
		}
		writeOut(*gridOut, grid)
	default:
		rep, err := measure(ctx, cl, *n, *c, *scaleFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rockload: %d reqs x %d clients: %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, %d x 429, %d errors, cache hit %.1f%%\n",
			rep.N, rep.Concurrency, rep.RPS, rep.P50MS, rep.P95MS, rep.P99MS, rep.Rejected429, rep.Errors, rep.CacheHitPct)
		fmt.Printf("rockload: ttfb p50 %.1fms p95 %.1fms, server compute p50 %.1fms p95 %.1fms, 429 retry wait %.0fms total\n",
			rep.TTFBP50MS, rep.TTFBP95MS, rep.ComputeP50MS, rep.ComputeP95MS, rep.RetryWaitTotalMS)
		if rep.Errors > 0 {
			fatal(fmt.Errorf("%d requests failed", rep.Errors))
		}
		if *out != "" {
			enc, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			writeOut(*out, append(enc, '\n'))
		}
	}
}

// startSelf serves an in-process daemon on an ephemeral loopback port.
func startSelf(clients int) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	r := experiments.NewRunner()
	r.SetJobs(runtime.GOMAXPROCS(0))
	// Queue deeper than the client count so the self-load measures
	// throughput, not artificial rejections.
	srv := serve.New(serve.Config{QueueDepth: 4 * clients}, r)
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.StartDrain()
		hs.Close()
		srv.Wait()
	}, nil
}

// cellFor returns request i's cell in the deterministic mix.
func cellFor(i int, scale string) serve.RunRequest {
	kind := sim.Kinds[i%len(sim.Kinds)]
	wl := loadWorkloads[(i/len(sim.Kinds))%len(loadWorkloads)]
	return serve.RunRequest{Kind: kind.String(), Workload: wl, Scale: scale}
}

// measure drives n requests through c concurrent clients and collects
// the report. Cancelling ctx (SIGINT) stops the feed and aborts any
// in-progress backoff sleep; measure then returns the context error
// instead of a half-measured report.
func measure(ctx context.Context, cl *client.Client, n, c int, scale string) (report, error) {
	var rejected, errCount atomic.Int64
	var retryWait atomic.Int64 // summed 429 Retry-After sleeps, in ns
	latencies := make([]time.Duration, n)
	ttfbs := make([]time.Duration, n)
	computes := make([]time.Duration, n)
	oks := make([]bool, n)
	work := make(chan int)
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req := cellFor(i, scale)
				t0 := time.Now()
				ok := false
				for attempt := 0; attempt < 50; attempt++ {
					res, err := cl.RunDetail(req)
					var busy *client.BusyError
					if errors.As(err, &busy) {
						rejected.Add(1)
						retryWait.Add(int64(busy.RetryAfter))
						if !sleepCtx(ctx, busy.RetryAfter) {
							break
						}
						continue
					}
					if err == nil && json.Valid(res.Body) {
						ok = true
						ttfbs[i] = res.TTFB
						computes[i] = res.Compute
					}
					break
				}
				latencies[i] = time.Since(t0)
				oks[i] = ok
				if !ok {
					errCount.Add(1)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return report{}, fmt.Errorf("interrupted: %w", err)
	}
	wall := time.Since(start)

	var okLat, okTTFB, okCompute []float64
	for i, ok := range oks {
		if ok {
			okLat = append(okLat, float64(latencies[i])/float64(time.Millisecond))
			okTTFB = append(okTTFB, float64(ttfbs[i])/float64(time.Millisecond))
			okCompute = append(okCompute, float64(computes[i])/float64(time.Millisecond))
		}
	}
	sort.Float64s(okLat)
	sort.Float64s(okTTFB)
	sort.Float64s(okCompute)
	rep := report{
		N:                n,
		Concurrency:      c,
		Scale:            scale,
		WallMS:           float64(wall) / float64(time.Millisecond),
		RPS:              float64(n) / wall.Seconds(),
		P50MS:            quantile(okLat, 0.50),
		P95MS:            quantile(okLat, 0.95),
		P99MS:            quantile(okLat, 0.99),
		TTFBP50MS:        quantile(okTTFB, 0.50),
		TTFBP95MS:        quantile(okTTFB, 0.95),
		ComputeP50MS:     quantile(okCompute, 0.50),
		ComputeP95MS:     quantile(okCompute, 0.95),
		RetryWaitTotalMS: float64(retryWait.Load()) / float64(time.Millisecond),
		Rejected429:      rejected.Load(),
		Errors:           errCount.Load(),
	}
	m, err := cl.Metrics()
	if err != nil {
		return rep, fmt.Errorf("scrape metrics: %w", err)
	}
	hits, misses := m["rocksim_serve_cache_hits"], m["rocksim_serve_cache_misses"]
	if hits+misses > 0 {
		rep.CacheHitPct = 100 * hits / (hits + misses)
	}
	return rep, nil
}

// quantile reads q from an ascending sample (nearest-rank on the
// client-side latency list; the daemon's own histograms use stats.Hist).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// sleepCtx sleeps for d unless ctx is cancelled first, reporting
// whether the full sleep elapsed. The 429 retry path uses it so a
// signal interrupts a backoff immediately instead of after the server's
// full Retry-After hint.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runCheck is bench-guard mode: self-measure and compare to baseline.
func runCheck(ctx context.Context, path string, n, c int, scale string) {
	base, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("rockload: no baseline at %s; skipping guard (run `make bench` to record one)\n", path)
		return
	}
	if err != nil {
		fatal(err)
	}
	var want report
	if err := json.Unmarshal(base, &want); err != nil {
		fatal(fmt.Errorf("bad baseline %s: %v", path, err))
	}
	if want.N > 0 {
		n, c = want.N, want.Concurrency
		scale = want.Scale
	}

	baseURL, shutdown, err := startSelf(c)
	if err != nil {
		fatal(err)
	}
	defer shutdown()
	got, err := measure(ctx, &client.Client{Base: baseURL}, n, c, scale)
	if err != nil {
		fatal(err)
	}

	failed := false
	if got.RPS < 0.8*want.RPS {
		fmt.Printf("FAIL req/s %.1f < 80%% of baseline %.1f\n", got.RPS, want.RPS)
		failed = true
	}
	if got.P95MS > 1.2*want.P95MS+5 {
		fmt.Printf("FAIL p95 %.1fms > 120%% of baseline %.1fms (+5ms)\n", got.P95MS, want.P95MS)
		failed = true
	}
	if got.Errors > 0 {
		fmt.Printf("FAIL %d requests errored\n", got.Errors)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("ok   serve %.1f req/s (baseline %.1f), p95 %.1fms (baseline %.1fms), cache hit %.1f%%\n",
		got.RPS, want.RPS, got.P95MS, want.P95MS, got.CacheHitPct)
}

func writeOut(path string, data []byte) {
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockload:", err)
	os.Exit(1)
}
