// Command rockload load-tests a rocksimd daemon (see docs/SERVICE.md):
// it fires a deterministic mix of /v1/run cells from N concurrent
// clients, honours 429 backpressure by retrying after the server's
// hint, and reports request throughput, latency percentiles and the
// daemon's cache-hit rate as BENCH_serve.json.
//
// Usage:
//
//	rockload -self -n 200 -c 8 -o BENCH_serve.json    # in-process daemon
//	rockload -addr http://127.0.0.1:8321 -n 500 -c 16
//	rockload -check BENCH_serve.json                  # bench-guard mode
//	rockload -addr http://host:8321 -healthz          # readiness probe
//	rockload -addr http://host:8321 -scale test -grid-exps T1,F3 -grid-out grid.txt
//
// Fleet modes (see docs/SERVICE.md):
//
//	rockload -targets http://h:8321,http://h:8322 -n 500 -c 16
//	    drive an external shard fleet directly: requests route by the
//	    same consistent-hash ring a rockgate would use, cache-hit rate
//	    is aggregated across shards.
//	rockload -fleet-bench -fleet-sizes 1,2,4 -shard-jobs 1 -o BENCH_serve.json
//	    scaling benchmark: for each fleet size N, start N in-process
//	    daemons (a fixed -shard-jobs worker pool each, so compute per
//	    shard is constant), push a cold mix of distinct cells through
//	    the ring, then hammer one popular cell from every client; the
//	    per-size throughput, percentiles, fleet-wide cache-hit rate and
//	    the popular cell's fleet-wide miss count (1 = computed once per
//	    fleet) land under the "fleet" key of BENCH_serve.json.
//
// In -check mode a fresh self-hosted measurement is compared against
// the recorded baseline: under 80% of the baseline's requests/s, or a
// p95 latency above 120% of baseline (+5ms slack), fails the guard.
// A baseline with a "fleet" key re-runs the fleet benchmark and guards
// each size's throughput and the top-size scaling factor the same way.
// A missing baseline file is a skip, not a failure — the numbers are
// machine-specific; regenerate with `make bench`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/serve"
	"rocksim/internal/serve/client"
	"rocksim/internal/sim"
)

// report is the recorded measurement (the BENCH_serve.json schema).
// The ttfb/compute/retry-wait keys were added later; old baselines
// without them still unmarshal, and the guard never reads them.
type report struct {
	N           int     `json:"n"`
	Concurrency int     `json:"concurrency"`
	Scale       string  `json:"scale"`
	WallMS      float64 `json:"wall_ms"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	// TTFB percentiles: client-side time to response headers, per
	// successful final attempt (excludes 429 retry sleeps).
	TTFBP50MS float64 `json:"ttfb_p50_ms"`
	TTFBP95MS float64 `json:"ttfb_p95_ms"`
	// Compute percentiles: the daemon's X-Compute-Us per request —
	// near zero on cache hits, so the spread shows the hit/miss split.
	ComputeP50MS float64 `json:"compute_p50_ms"`
	ComputeP95MS float64 `json:"compute_p95_ms"`
	// RetryWaitTotalMS sums every 429 Retry-After sleep across the run.
	RetryWaitTotalMS float64 `json:"retry_wait_total_ms"`
	Rejected429      int64   `json:"rejected_429"`
	Errors           int64   `json:"errors"`
	CacheHitPct      float64 `json:"cache_hit_pct"`
}

// fleetReport is the "fleet" key of BENCH_serve.json: one entry per
// fleet size, plus the headline scaling factor (largest size's cell
// throughput over size 1's).
type fleetReport struct {
	ShardJobs int         `json:"shard_jobs"`
	Sizes     []fleetSize `json:"sizes"`
	ScalingX  float64     `json:"scaling_x"`
}

// fleetSize is one fleet size's measurement. The cold phase pushes
// distinct cells (every request a cache miss somewhere in the fleet);
// the popular phase repeats one cell from every client and records how
// many fleet-wide misses it cost — 1 means ring placement did its job
// and the fleet computed it exactly once.
type fleetSize struct {
	Shards       int     `json:"shards"`
	N            int     `json:"n"`
	Concurrency  int     `json:"concurrency"`
	WallMS       float64 `json:"wall_ms"`
	CellRPS      float64 `json:"cell_rps"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	Rejected429  int64   `json:"rejected_429"`
	Errors       int64   `json:"errors"`
	FleetHitPct  float64 `json:"fleet_hit_pct"`
	PopularReqs  int     `json:"popular_reqs"`
	PopularMiss  float64 `json:"popular_misses"`
	DistinctMiss float64 `json:"distinct_misses"`
}

// loadWorkloads is the fixed cell mix: every core kind crossed with
// these workloads, cycled deterministically by request index, so a run
// of n requests always asks for the same n cells in the same order.
var loadWorkloads = []string{"chase", "oltp"}

func main() {
	addr := flag.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8321 (empty: use -self)")
	self := flag.Bool("self", false, "serve an in-process daemon on a loopback port and load that")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	scaleFlag := flag.String("scale", "test", "workload scale for the cell mix: test | full")
	out := flag.String("o", "", "write the measurement as JSON to this file ('-' = stdout)")
	check := flag.String("check", "", "compare a fresh -self measurement against this baseline JSON; missing file = skip")
	healthz := flag.Bool("healthz", false, "probe /healthz and exit")
	gridExps := flag.String("grid-exps", "", "fetch /v1/grid for these comma-separated experiments instead of load-testing")
	gridOut := flag.String("grid-out", "-", "write the fetched grid to this file ('-' = stdout)")
	targets := flag.String("targets", "", "comma-separated shard base URLs: load a fleet directly, routing by the shared ring")
	fleetBench := flag.Bool("fleet-bench", false, "run the in-process fleet scaling benchmark (see -fleet-sizes)")
	fleetSizes := flag.String("fleet-sizes", "1,2,4", "fleet sizes measured by -fleet-bench")
	shardJobs := flag.Int("shard-jobs", 1, "simulation workers per in-process shard in -fleet-bench (fixed, so scaling comes from shard count)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context: workers stop taking cells
	// and any in-progress 429 backoff sleep aborts immediately, so ^C
	// during a long Retry-After never hangs the process. A second signal
	// kills the process the default way (NotifyContext unregisters).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *check != "" {
		runCheck(ctx, *check, *n, *c, *scaleFlag, *shardJobs)
		return
	}
	if *fleetBench {
		runFleetBench(ctx, parseSizes(*fleetSizes), *shardJobs, *n, *c, *scaleFlag, *out)
		return
	}
	if *targets != "" {
		runFleetLoad(ctx, splitList(*targets), *n, *c, *scaleFlag, *healthz)
		return
	}

	base := *addr
	var shutdown func()
	if base == "" || *self {
		var err error
		base, shutdown, err = startSelf(*c)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	cl := &client.Client{Base: base}

	switch {
	case *healthz:
		if err := cl.Healthz(); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case *gridExps != "":
		grid, err := cl.Grid(serve.GridRequest{Exps: strings.Split(*gridExps, ","), Scale: *scaleFlag})
		if err != nil {
			fatal(err)
		}
		writeOut(*gridOut, grid)
	default:
		rep, err := measure(ctx, cl, *n, *c, *scaleFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rockload: %d reqs x %d clients: %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, %d x 429, %d errors, cache hit %.1f%%\n",
			rep.N, rep.Concurrency, rep.RPS, rep.P50MS, rep.P95MS, rep.P99MS, rep.Rejected429, rep.Errors, rep.CacheHitPct)
		fmt.Printf("rockload: ttfb p50 %.1fms p95 %.1fms, server compute p50 %.1fms p95 %.1fms, 429 retry wait %.0fms total\n",
			rep.TTFBP50MS, rep.TTFBP95MS, rep.ComputeP50MS, rep.ComputeP95MS, rep.RetryWaitTotalMS)
		if rep.Errors > 0 {
			fatal(fmt.Errorf("%d requests failed", rep.Errors))
		}
		if *out != "" {
			enc, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			writeOut(*out, append(enc, '\n'))
		}
	}
}

// startSelf serves an in-process daemon on an ephemeral loopback port.
func startSelf(clients int) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	r := experiments.NewRunner()
	r.SetJobs(runtime.GOMAXPROCS(0))
	// Queue deeper than the client count so the self-load measures
	// throughput, not artificial rejections.
	srv := serve.New(serve.Config{QueueDepth: 4 * clients}, r)
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.StartDrain()
		hs.Close()
		srv.Wait()
	}, nil
}

// cellFor returns request i's cell in the deterministic mix.
func cellFor(i int, scale string) serve.RunRequest {
	kind := sim.Kinds[i%len(sim.Kinds)]
	wl := loadWorkloads[(i/len(sim.Kinds))%len(loadWorkloads)]
	return serve.RunRequest{Kind: kind.String(), Workload: wl, Scale: scale}
}

// drive pushes reqs through c concurrent clients against do, honouring
// 429 backpressure, and collects the raw measurement. Cancelling ctx
// (SIGINT) stops the feed and aborts any in-progress backoff sleep;
// drive then returns the context error instead of a half-measured
// report. Both the single-daemon and fleet paths run through this loop,
// so their numbers are directly comparable.
func drive(ctx context.Context, do func(serve.RunRequest) (*client.RunResult, error), reqs []serve.RunRequest, c int) (report, error) {
	n := len(reqs)
	var rejected, errCount atomic.Int64
	var retryWait atomic.Int64 // summed 429 Retry-After sleeps, in ns
	latencies := make([]time.Duration, n)
	ttfbs := make([]time.Duration, n)
	computes := make([]time.Duration, n)
	oks := make([]bool, n)
	work := make(chan int)
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req := reqs[i]
				t0 := time.Now()
				ok := false
				for attempt := 0; attempt < 50; attempt++ {
					res, err := do(req)
					var busy *client.BusyError
					if errors.As(err, &busy) {
						rejected.Add(1)
						retryWait.Add(int64(busy.RetryAfter))
						if !sleepCtx(ctx, busy.RetryAfter) {
							break
						}
						continue
					}
					if err == nil && json.Valid(res.Body) {
						ok = true
						ttfbs[i] = res.TTFB
						computes[i] = res.Compute
					}
					break
				}
				latencies[i] = time.Since(t0)
				oks[i] = ok
				if !ok {
					errCount.Add(1)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return report{}, fmt.Errorf("interrupted: %w", err)
	}
	wall := time.Since(start)

	var okLat, okTTFB, okCompute []float64
	for i, ok := range oks {
		if ok {
			okLat = append(okLat, float64(latencies[i])/float64(time.Millisecond))
			okTTFB = append(okTTFB, float64(ttfbs[i])/float64(time.Millisecond))
			okCompute = append(okCompute, float64(computes[i])/float64(time.Millisecond))
		}
	}
	sort.Float64s(okLat)
	sort.Float64s(okTTFB)
	sort.Float64s(okCompute)
	return report{
		N:                n,
		Concurrency:      c,
		WallMS:           float64(wall) / float64(time.Millisecond),
		RPS:              float64(n) / wall.Seconds(),
		P50MS:            quantile(okLat, 0.50),
		P95MS:            quantile(okLat, 0.95),
		P99MS:            quantile(okLat, 0.99),
		TTFBP50MS:        quantile(okTTFB, 0.50),
		TTFBP95MS:        quantile(okTTFB, 0.95),
		ComputeP50MS:     quantile(okCompute, 0.50),
		ComputeP95MS:     quantile(okCompute, 0.95),
		RetryWaitTotalMS: float64(retryWait.Load()) / float64(time.Millisecond),
		Rejected429:      rejected.Load(),
		Errors:           errCount.Load(),
	}, nil
}

// measure drives the standard single-daemon mix and folds in the
// daemon's cache-hit rate.
func measure(ctx context.Context, cl *client.Client, n, c int, scale string) (report, error) {
	reqs := make([]serve.RunRequest, n)
	for i := range reqs {
		reqs[i] = cellFor(i, scale)
	}
	rep, err := drive(ctx, cl.RunDetail, reqs, c)
	if err != nil {
		return rep, err
	}
	rep.Scale = scale
	m, err := cl.Metrics()
	if err != nil {
		return rep, fmt.Errorf("scrape metrics: %w", err)
	}
	hits, misses := m["rocksim_serve_cache_hits"], m["rocksim_serve_cache_misses"]
	if hits+misses > 0 {
		rep.CacheHitPct = 100 * hits / (hits + misses)
	}
	return rep, nil
}

// distinctCellFor returns request i's cell in the cold fleet mix: the
// standard kind/workload cycle plus a unique DQ-size override, so every
// request is a distinct cache cell and the run measures simulation
// throughput, not cache bandwidth.
func distinctCellFor(i int, scale string) serve.RunRequest {
	req := cellFor(i, scale)
	dq := 8 + i
	req.Options = &serve.RunOptions{DQ: &dq}
	return req
}

// runFleetLoad drives an external shard fleet directly: requests route
// by the shared consistent-hash ring (the same placement a rockgate
// would compute) and the cache-hit rate aggregates across shards.
func runFleetLoad(ctx context.Context, targets []string, n, c int, scale string, healthz bool) {
	fl, err := client.NewFleet(targets, client.FleetConfig{PerShard: c})
	if err != nil {
		fatal(err)
	}
	defer fl.Close()
	fl.Monitor().Check()
	if healthz {
		all := fl.HealthAll()
		bad := 0
		for _, t := range fl.Targets() {
			h := all[t]
			switch {
			case h == nil:
				fmt.Printf("%s: unreachable\n", t)
				bad++
			case h.Draining:
				fmt.Printf("%s: draining (shard %q)\n", t, h.ShardID)
				bad++
			default:
				fmt.Printf("%s: ok (shard %q, queue %d/%d)\n", t, h.ShardID, h.QueueDepth, h.QueueLimit)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}
	do := func(r serve.RunRequest) (*client.RunResult, error) {
		res, _, err := fl.Run(ctx, r)
		return res, err
	}
	reqs := make([]serve.RunRequest, n)
	for i := range reqs {
		reqs[i] = cellFor(i, scale)
	}
	rep, err := drive(ctx, do, reqs, c)
	if err != nil {
		fatal(err)
	}
	m := fl.MetricsAll()
	hits, misses := m["rocksim_serve_cache_hits"], m["rocksim_serve_cache_misses"]
	if hits+misses > 0 {
		rep.CacheHitPct = 100 * hits / (hits + misses)
	}
	fmt.Printf("rockload: fleet of %d: %d reqs x %d clients: %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, %d x 429, %d errors, fleet cache hit %.1f%%\n",
		len(targets), rep.N, rep.Concurrency, rep.RPS, rep.P50MS, rep.P95MS, rep.P99MS, rep.Rejected429, rep.Errors, rep.CacheHitPct)
	if rep.Errors > 0 {
		fatal(fmt.Errorf("%d requests failed", rep.Errors))
	}
}

// startFleetSelf serves n in-process daemons, each with its own Runner
// (cache and pool) bounded to shardJobs simulation workers.
func startFleetSelf(shards, shardJobs, clients int) (targets []string, shutdown func(), err error) {
	var shut []func()
	shutdown = func() {
		for _, f := range shut {
			f()
		}
	}
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		r := experiments.NewRunner()
		r.SetJobs(shardJobs)
		srv := serve.New(serve.Config{ShardID: fmt.Sprintf("s%d", i), QueueDepth: 4 * clients}, r)
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		targets = append(targets, "http://"+ln.Addr().String())
		shut = append(shut, func() {
			srv.StartDrain()
			hs.Close()
			srv.Wait()
		})
	}
	return targets, shutdown, nil
}

// fleetMeasureSize measures one fleet size: a cold phase of n distinct
// cells routed over the ring, then a popular phase repeating one cell
// from every client. Fleet-wide cache counters before and after the
// popular phase prove where it was computed: popular_misses == 1 means
// once, on its owning shard.
func fleetMeasureSize(ctx context.Context, shards, shardJobs, n, c int, scale string) (fleetSize, error) {
	targets, shutdown, err := startFleetSelf(shards, shardJobs, c)
	if err != nil {
		return fleetSize{}, err
	}
	defer shutdown()
	fl, err := client.NewFleet(targets, client.FleetConfig{PerShard: c})
	if err != nil {
		return fleetSize{}, err
	}
	defer fl.Close()
	do := func(r serve.RunRequest) (*client.RunResult, error) {
		res, _, err := fl.Run(ctx, r)
		return res, err
	}

	reqs := make([]serve.RunRequest, n)
	for i := range reqs {
		reqs[i] = distinctCellFor(i, scale)
	}
	cold, err := drive(ctx, do, reqs, c)
	if err != nil {
		return fleetSize{}, err
	}
	m1 := fl.MetricsAll()

	p := n / 4
	if p < c {
		p = c
	}
	preqs := make([]serve.RunRequest, p)
	for i := range preqs {
		preqs[i] = cellFor(0, scale)
	}
	pop, err := drive(ctx, do, preqs, c)
	if err != nil {
		return fleetSize{}, err
	}
	m2 := fl.MetricsAll()

	hits, misses := m2["rocksim_serve_cache_hits"], m2["rocksim_serve_cache_misses"]
	fs := fleetSize{
		Shards:       shards,
		N:            n,
		Concurrency:  c,
		WallMS:       cold.WallMS,
		CellRPS:      cold.RPS,
		P50MS:        cold.P50MS,
		P95MS:        cold.P95MS,
		P99MS:        cold.P99MS,
		Rejected429:  cold.Rejected429 + pop.Rejected429,
		Errors:       cold.Errors + pop.Errors,
		PopularReqs:  p,
		PopularMiss:  m2["rocksim_serve_cache_misses"] - m1["rocksim_serve_cache_misses"],
		DistinctMiss: m1["rocksim_serve_cache_misses"],
	}
	if hits+misses > 0 {
		fs.FleetHitPct = 100 * hits / (hits + misses)
	}
	return fs, nil
}

// runFleetBench measures every requested fleet size and records the
// results under the "fleet" key of the -o file, preserving the file's
// single-daemon fields.
func runFleetBench(ctx context.Context, sizes []int, shardJobs, n, c int, scale, out string) {
	fr := fleetReport{ShardJobs: shardJobs}
	for _, size := range sizes {
		fs, err := fleetMeasureSize(ctx, size, shardJobs, n, c, scale)
		if err != nil {
			fatal(err)
		}
		fr.Sizes = append(fr.Sizes, fs)
		fmt.Printf("rockload: fleet N=%d (%d jobs/shard): %.1f cells/s, p50 %.1fms p95 %.1fms p99 %.1fms, fleet hit %.1f%%, popular cell: %d reqs -> %.0f misses\n",
			fs.Shards, shardJobs, fs.CellRPS, fs.P50MS, fs.P95MS, fs.P99MS, fs.FleetHitPct, fs.PopularReqs, fs.PopularMiss)
		if fs.Errors > 0 {
			fatal(fmt.Errorf("fleet N=%d: %d requests failed", fs.Shards, fs.Errors))
		}
	}
	fr.ScalingX = scalingX(fr.Sizes)
	if fr.ScalingX > 0 {
		fmt.Printf("rockload: fleet scaling: %.2fx from N=1 to N=%d\n", fr.ScalingX, maxShards(fr.Sizes))
	}
	if out != "" {
		mergeFleet(out, fr)
	}
}

// scalingX is the headline factor: the largest fleet's cold-cache cell
// throughput over the single-shard fleet's. 0 when size 1 was not
// measured.
func scalingX(sizes []fleetSize) float64 {
	var base, best float64
	for _, s := range sizes {
		if s.Shards == 1 {
			base = s.CellRPS
		}
		if s.CellRPS > 0 && s.Shards == maxShards(sizes) {
			best = s.CellRPS
		}
	}
	if base <= 0 {
		return 0
	}
	return best / base
}

func maxShards(sizes []fleetSize) int {
	m := 0
	for _, s := range sizes {
		if s.Shards > m {
			m = s.Shards
		}
	}
	return m
}

// mergeFleet writes fr under the "fleet" key of path, preserving any
// existing single-daemon fields in the file.
func mergeFleet(path string, fr fleetReport) {
	doc := map[string]any{}
	if path != "-" {
		if old, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(old, &doc); err != nil {
				fatal(fmt.Errorf("bad existing %s: %v", path, err))
			}
		}
	}
	doc["fleet"] = fr
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	writeOut(path, append(enc, '\n'))
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad fleet size %q", part))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatal(errors.New("no fleet sizes"))
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// quantile reads q from an ascending sample (nearest-rank on the
// client-side latency list; the daemon's own histograms use stats.Hist).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// sleepCtx sleeps for d unless ctx is cancelled first, reporting
// whether the full sleep elapsed. The 429 retry path uses it so a
// signal interrupts a backoff immediately instead of after the server's
// full Retry-After hint.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runCheck is bench-guard mode: self-measure and compare to baseline.
// A baseline carrying a "fleet" key additionally re-runs the fleet
// benchmark at the recorded sizes and guards each size's throughput
// plus the top-size scaling factor.
func runCheck(ctx context.Context, path string, n, c int, scale string, shardJobs int) {
	base, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("rockload: no baseline at %s; skipping guard (run `make bench` to record one)\n", path)
		return
	}
	if err != nil {
		fatal(err)
	}
	var want struct {
		report
		Fleet *fleetReport `json:"fleet"`
	}
	if err := json.Unmarshal(base, &want); err != nil {
		fatal(fmt.Errorf("bad baseline %s: %v", path, err))
	}

	failed := false
	if want.N > 0 {
		sn, sc, sscale := want.N, want.Concurrency, want.Scale
		baseURL, shutdown, err := startSelf(sc)
		if err != nil {
			fatal(err)
		}
		got, err := measure(ctx, &client.Client{Base: baseURL}, sn, sc, sscale)
		shutdown()
		if err != nil {
			fatal(err)
		}
		if got.RPS < 0.8*want.RPS {
			fmt.Printf("FAIL req/s %.1f < 80%% of baseline %.1f\n", got.RPS, want.RPS)
			failed = true
		}
		if got.P95MS > 1.2*want.P95MS+5 {
			fmt.Printf("FAIL p95 %.1fms > 120%% of baseline %.1fms (+5ms)\n", got.P95MS, want.P95MS)
			failed = true
		}
		if got.Errors > 0 {
			fmt.Printf("FAIL %d requests errored\n", got.Errors)
			failed = true
		}
		if !failed {
			fmt.Printf("ok   serve %.1f req/s (baseline %.1f), p95 %.1fms (baseline %.1fms), cache hit %.1f%%\n",
				got.RPS, want.RPS, got.P95MS, want.P95MS, got.CacheHitPct)
		}
	}

	if want.Fleet != nil && len(want.Fleet.Sizes) > 0 {
		sj := want.Fleet.ShardJobs
		if sj < 1 {
			sj = shardJobs
		}
		gotFleet := fleetReport{ShardJobs: sj}
		for _, ws := range want.Fleet.Sizes {
			gs, err := fleetMeasureSize(ctx, ws.Shards, sj, ws.N, ws.Concurrency, scale)
			if err != nil {
				fatal(err)
			}
			gotFleet.Sizes = append(gotFleet.Sizes, gs)
			if gs.CellRPS < 0.8*ws.CellRPS {
				fmt.Printf("FAIL fleet N=%d cells/s %.1f < 80%% of baseline %.1f\n", ws.Shards, gs.CellRPS, ws.CellRPS)
				failed = true
			}
			if gs.PopularMiss > ws.PopularMiss+0.5 {
				fmt.Printf("FAIL fleet N=%d popular cell computed %.0f times (baseline %.0f): ring placement regressed\n",
					ws.Shards, gs.PopularMiss, ws.PopularMiss)
				failed = true
			}
			if gs.Errors > 0 {
				fmt.Printf("FAIL fleet N=%d: %d requests errored\n", ws.Shards, gs.Errors)
				failed = true
			}
		}
		gotFleet.ScalingX = scalingX(gotFleet.Sizes)
		if want.Fleet.ScalingX > 0 && gotFleet.ScalingX < 0.8*want.Fleet.ScalingX {
			fmt.Printf("FAIL fleet scaling %.2fx < 80%% of baseline %.2fx\n", gotFleet.ScalingX, want.Fleet.ScalingX)
			failed = true
		}
		if !failed {
			fmt.Printf("ok   fleet scaling %.2fx (baseline %.2fx) across sizes %v\n",
				gotFleet.ScalingX, want.Fleet.ScalingX, fleetSizesOf(gotFleet.Sizes))
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fleetSizesOf(sizes []fleetSize) []int {
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, s.Shards)
	}
	return out
}

func writeOut(path string, data []byte) {
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockload:", err)
	os.Exit(1)
}
