// Command sstbench regenerates the tables and figures of the reproduced
// SST evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	sstbench                  # run every experiment at full scale
//	sstbench -exp F1,F7       # run selected experiments
//	sstbench -scale test      # small workloads (fast smoke run)
//	sstbench -j 8             # up to 8 concurrent simulation runs
//
// Each experiment's grid of independent simulation runs executes on a
// worker pool bounded by -j (default: one worker per CPU); tables are
// assembled in presentation order, so the output is byte-identical to
// a -j 1 run (wall-clock lines aside).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/faults"
	"rocksim/internal/obs"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (T1, T2, F1..F16, S1, T3) or 'all'")
	scaleFlag := flag.String("scale", "full", "workload scale: test | full")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulation runs (1 = serial; output is identical either way)")
	chart := flag.Bool("chart", false, "also render each figure as ASCII bar charts")
	metricsOut := flag.String("metrics", "", "write per-experiment wall-clock and row counters as flat JSON ('-' = stdout)")
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace_event JSON of per-experiment wall-clock spans (ts = µs since start)")
	traceOut := flag.String("trace", "", "write request-scoped spans (grid root + one child per experiment, Chrome JSON) to this file")
	faultsFlag := flag.String("faults", "", "deterministic fault plan applied to every grid cell (faults.Parse syntax; see docs/ROBUSTNESS.md)")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog per simulation cell (e.g. 30s; 0 = none); a tripped cell renders as ERR(deadline)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after all experiments) to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sstbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sstbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sstbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sstbench:", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, id := range experiments.All {
			fmt.Println(id)
		}
		return
	}

	scale := workload.ScaleFull
	switch *scaleFlag {
	case "full":
	case "test":
		scale = workload.ScaleTest
	default:
		fmt.Fprintf(os.Stderr, "sstbench: bad -scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ids := experiments.All
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	r := experiments.NewRunner()
	r.SetJobs(*jobs)
	if *faultsFlag != "" || *timeout > 0 {
		opts := sim.DefaultOptions()
		opts.Timeout = *timeout
		if *faultsFlag != "" {
			plan, err := faults.Parse(*faultsFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sstbench:", err)
				os.Exit(2)
			}
			opts.Faults = plan
		}
		r.SetBaseOptions(opts)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	if *chromeOut != "" {
		tr = obs.NewTrace()
	}
	// -trace is the span-tree view of the same grid: a root span with
	// one child per experiment, in the exact format GET /v1/trace/{id}
	// serves for a traced daemon request.
	ctx := context.Background()
	var tracer *obs.Tracer
	var gridSpan *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		ctx, gridSpan = obs.StartSpan(ctx, "grid")
	}
	t0 := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		_, es := obs.StartSpan(ctx, "experiment")
		es.SetAttr("id", id)
		res, err := r.Run(id, scale)
		es.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sstbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		res.Fprint(os.Stdout)
		if *chart {
			res.FprintCharts(os.Stdout)
		}
		if reg != nil {
			rows := 0
			for _, t := range res.Tables {
				rows += t.NumRows()
			}
			reg.Counter("bench/" + id + "/wall_ms").Set(uint64(elapsed.Milliseconds()))
			reg.Counter("bench/" + id + "/rows").Set(uint64(rows))
			reg.Counter("bench/" + id + "/tables").Set(uint64(len(res.Tables)))
		}
		if tr != nil {
			tr.Span(uint64(start.Sub(t0).Microseconds()), uint64(time.Since(t0).Microseconds()), "experiment", id)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}
	if reg != nil {
		writeOut(*metricsOut, reg.WriteJSON)
	}
	if tr != nil {
		writeOut(*chromeOut, tr.WriteChrome)
	}
	if tracer != nil {
		gridSpan.End()
		writeOut(*traceOut, tracer.WriteChrome)
	}
}

func writeOut(path string, write func(w io.Writer) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			fmt.Fprintln(os.Stderr, "sstbench:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "sstbench:", err)
		os.Exit(1)
	}
}
