// Command sstbench regenerates the tables and figures of the reproduced
// SST evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	sstbench                  # run every experiment at full scale
//	sstbench -exp F1,F7       # run selected experiments
//	sstbench -scale test      # small workloads (fast smoke run)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (T1, T2, F1..F16, T3) or 'all'")
	scaleFlag := flag.String("scale", "full", "workload scale: test | full")
	chart := flag.Bool("chart", false, "also render each figure as ASCII bar charts")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.All {
			fmt.Println(id)
		}
		return
	}

	scale := workload.ScaleFull
	switch *scaleFlag {
	case "full":
	case "test":
		scale = workload.ScaleTest
	default:
		fmt.Fprintf(os.Stderr, "sstbench: bad -scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	ids := experiments.All
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	r := experiments.NewRunner()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := r.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sstbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		if *chart {
			res.FprintCharts(os.Stdout)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
