// Command rkdiff compares two execution traces (produced by rkrun
// -trace) and reports the first point of divergence: the debugging
// workflow for "two runs should have executed the same instructions".
//
// Usage:
//
//	rkdiff a.rktr b.rktr
//	rkdiff -context 5 a.rktr b.rktr
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"rocksim/internal/trace"
)

func main() {
	context := flag.Int("context", 3, "matching records to show before a divergence")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rkdiff [-context n] <a.rktr> <b.rktr>")
		os.Exit(2)
	}
	ra, err := openTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	rb, err := openTrace(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	var history []trace.Record
	idx := uint64(0)
	for {
		a, errA := ra.Read()
		b, errB := rb.Read()
		endA := errors.Is(errA, io.EOF)
		endB := errors.Is(errB, io.EOF)
		switch {
		case errA != nil && !endA:
			fatal(fmt.Errorf("%s: %w", flag.Arg(0), errA))
		case errB != nil && !endB:
			fatal(fmt.Errorf("%s: %w", flag.Arg(1), errB))
		case endA && endB:
			fmt.Printf("traces identical: %d records\n", idx)
			return
		case endA != endB:
			fmt.Printf("length mismatch at record %d: %s ended first\n", idx, shorter(endA, flag.Arg(0), flag.Arg(1)))
			os.Exit(1)
		}
		if a != b {
			fmt.Printf("divergence at record %d:\n", idx)
			for i, h := range history {
				fmt.Printf("  =%-6d pc=%#x  %v\n", int(idx)-len(history)+i, h.PC, h.Inst)
			}
			fmt.Printf("  A:%-5d pc=%#x  %v  addr=%#x\n", idx, a.PC, a.Inst, a.Addr)
			fmt.Printf("  B:%-5d pc=%#x  %v  addr=%#x\n", idx, b.PC, b.Inst, b.Addr)
			os.Exit(1)
		}
		history = append(history, a)
		if len(history) > *context {
			history = history[1:]
		}
		idx++
	}
}

func shorter(endA bool, a, b string) string {
	if endA {
		return a
	}
	return b
}

func openTrace(path string) (*trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return trace.NewReader(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rkdiff:", err)
	os.Exit(1)
}
