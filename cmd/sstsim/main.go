// Command sstsim runs one workload (built-in or assembled from a .s
// file) on one core model and prints detailed statistics.
//
// Usage:
//
//	sstsim -workload oltp -core sst
//	sstsim -workload all -core sst -scale test
//	sstsim -asm prog.s -core ooo-large
//	sstsim -workload mcf -core sst -dq 32 -ckpt 2 -memlat 500
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rocksim/internal/asm"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/obs"
	"rocksim/internal/ooo"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

func main() {
	wl := flag.String("workload", "oltp", "built-in workload name, or 'all'")
	asmFile := flag.String("asm", "", "assemble and run this RK64 source file instead of a built-in workload")
	coreKind := flag.String("core", "sst", "core model: inorder | ooo-small | ooo-large | scout | sst-ea | sst | all")
	scaleFlag := flag.String("scale", "full", "workload scale: test | full")
	dq := flag.Int("dq", -1, "override SST deferred-queue size")
	ckpt := flag.Int("ckpt", -1, "override SST checkpoint count")
	ssb := flag.Int("ssb", -1, "override SST store-buffer size")
	memlat := flag.Int("memlat", -1, "override DRAM latency (cycles)")
	faultsFlag := flag.String("faults", "", "deterministic fault plan, e.g. 'seed=7;ckpt-deny@100-200;mem-jitter@0-:16' or 'random:SEED' (see docs/ROBUSTNESS.md)")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog per run (e.g. 30s; 0 = none)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	pipeview := flag.Uint64("pipeview", 0, "print a per-cycle pipeline trace for the first N cycles (SST-family cores only)")
	metricsOut := flag.String("metrics", "", "write run metrics as flat JSON to this file ('-' = stdout)")
	promOut := flag.String("prom", "", "write run metrics in Prometheus text format to this file")
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
	traceOut := flag.String("trace", "", "write request-scoped wall-clock spans (one sim-run span per run, Chrome JSON) to this file")
	sampleEvery := flag.Uint64("sample-every", obs.DefaultSampleEvery, "cycles between occupancy samples in timelines and trace counter tracks")
	list := flag.Bool("list", false, "list workloads and core kinds, then exit")
	flag.Parse()

	if *list {
		fmt.Println("core kinds:")
		for _, k := range sim.Kinds {
			fmt.Printf("  %v\n", k)
		}
		fmt.Println("workloads:")
		for _, n := range workload.Names {
			w, err := workload.Build(n, workload.ScaleTest)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-9s %s\n", n, w.Description)
		}
		return
	}

	var kinds []sim.Kind
	if *coreKind == "all" {
		kinds = sim.Kinds
	} else {
		kind, err := sim.KindByName(*coreKind)
		if err != nil {
			fatal(err)
		}
		kinds = []sim.Kind{kind}
	}
	var err error
	scale := workload.ScaleFull
	if *scaleFlag == "test" {
		scale = workload.ScaleTest
	}

	opts := sim.DefaultOptions()
	if *dq >= 0 {
		opts.SST.DQSize = *dq
	}
	if *ckpt >= 0 {
		opts.SST.Checkpoints = *ckpt
	}
	if *ssb >= 0 {
		opts.SST.SSBSize = *ssb
	}
	if *memlat > 0 {
		opts.Hier.DRAM.Latency = *memlat
	}
	if *pipeview > 0 {
		opts.Probe = &core.PipeView{W: os.Stdout, MaxCycles: *pipeview}
	}
	opts.Timeout = *timeout
	if *faultsFlag != "" {
		plan, err := parseFaults(*faultsFlag)
		if err != nil {
			fatal(err)
		}
		opts.Faults = plan
	}

	var specs []*workload.Spec
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		specs = []*workload.Spec{{Name: *asmFile, Program: prog, Description: "user program"}}
	case *wl == "all":
		specs, err = workload.BuildAll(scale)
		if err != nil {
			fatal(err)
		}
	default:
		w, err := workload.Build(*wl, scale)
		if err != nil {
			fatal(err)
		}
		specs = []*workload.Spec{w}
	}

	multi := len(specs)*len(kinds) > 1
	wantMetrics := *metricsOut != "" || *promOut != "" || *jsonOut
	allMetrics := make(map[string]*obs.Registry)
	// -trace observes the runs in the wall-clock domain: every run
	// becomes a root sim-run span (kind/program/cycles attrs) in one
	// Chrome trace. It rides the same context plumbing as the service's
	// request tracing and never affects the simulated outcome.
	runCtx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		runCtx = obs.WithTracer(runCtx, tracer)
	}
	for _, w := range specs {
		for _, kind := range kinds {
			ropts := opts
			if wantMetrics {
				reg := obs.NewRegistry()
				reg.SetSampleEvery(*sampleEvery)
				ropts.Metrics = reg
			}
			var trace *obs.Trace
			var col *obs.Collector
			if *chromeOut != "" {
				trace = obs.NewTrace()
				col = obs.NewCollector(trace, ropts.Metrics)
				col.SampleEvery = *sampleEvery
				ropts.Sink = col
			}
			out, err := sim.RunContext(runCtx, kind, w.Program, ropts)
			if err != nil {
				fatal(err)
			}
			if col != nil {
				col.Flush(out.Cycles)
			}
			runName := w.Name + "/" + kind.String()
			if ropts.Metrics != nil {
				allMetrics[runName] = ropts.Metrics
			}
			if trace != nil {
				writeChromeTrace(suffixPath(*chromeOut, runName, multi), trace)
			}
			if *jsonOut {
				if err := sim.NewReport(out).WriteJSON(os.Stdout); err != nil {
					fatal(err)
				}
				continue
			}
			report(w, out)
		}
	}
	if *metricsOut != "" {
		writeMetricsJSON(*metricsOut, allMetrics, multi)
	}
	if *promOut != "" {
		writeMetricsProm(*promOut, allMetrics)
	}
	if tracer != nil {
		f := create(*traceOut)
		if err := tracer.WriteChrome(f); err != nil {
			fatal(err)
		}
		closeOut(f)
	}
}

// suffixPath inserts "-<run>" before path's extension when a run is one
// of several, so each run gets its own trace file.
func suffixPath(path, run string, multi bool) string {
	if !multi {
		return path
	}
	run = strings.NewReplacer("/", "-", " ", "_", ".", "_").Replace(run)
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + run + ext
}

func create(path string) *os.File {
	if path == "-" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func closeOut(f *os.File) {
	if f != os.Stdout {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func writeChromeTrace(path string, tr *obs.Trace) {
	f := create(path)
	if err := tr.WriteChrome(f); err != nil {
		fatal(err)
	}
	closeOut(f)
}

// writeMetricsJSON writes a single run's snapshot as a flat object, or
// several runs as a "workload/kind"-keyed map.
func writeMetricsJSON(path string, m map[string]*obs.Registry, multi bool) {
	f := create(path)
	var err error
	if multi {
		snaps := make(map[string]obs.Snapshot, len(m))
		for name, reg := range m {
			snaps[name] = reg.Snapshot()
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(snaps)
	} else {
		for _, reg := range m {
			err = reg.WriteJSON(f)
		}
	}
	if err != nil {
		fatal(err)
	}
	closeOut(f)
}

func writeMetricsProm(path string, m map[string]*obs.Registry) {
	f := create(path)
	for _, name := range stats.SortedKeys(m) {
		if len(m) > 1 {
			fmt.Fprintf(f, "# run: %s\n", name)
		}
		if err := m[name].WriteProm(f); err != nil {
			fatal(err)
		}
	}
	closeOut(f)
}

func report(w *workload.Spec, out sim.Outcome) {
	b := out.Core.Base()
	fmt.Printf("== %s on %v ==\n", w.Name, out.Kind)
	if w.Description != "" {
		fmt.Printf("   %s\n", w.Description)
	}
	fmt.Printf("cycles        %d\n", out.Cycles)
	fmt.Printf("retired       %d\n", out.Retired)
	fmt.Printf("IPC           %.3f\n", out.IPC())
	fmt.Printf("loads         %d (L1 %.1f%% / L2 %.1f%% / mem %.1f%%)\n",
		b.Loads, stats.Pct(b.LoadL1Hits, b.Loads), stats.Pct(b.LoadL2Hits, b.Loads), stats.Pct(b.LoadMemHits, b.Loads))
	fmt.Printf("stores        %d\n", b.Stores)
	fmt.Printf("branches      %d (mispred %.2f%%)\n", b.Branches, stats.Pct(b.BranchMispred, b.Branches))
	fmt.Printf("MLP           %.2f\n", b.MLP())
	l1 := out.Mach.Hier.L1D(0).Stats
	l2 := out.Mach.Hier.L2().Stats
	fmt.Printf("L1D miss%%     %.2f   L2 miss%% %.2f\n", 100*l1.MissRate(), 100*l2.MissRate())
	fmt.Printf("cpi stack     ")
	for bk := cpu.Bucket(0); bk < cpu.NumBuckets; bk++ {
		if b.CPI[bk] > 0 {
			fmt.Printf("%s %.1f%%  ", bk, stats.Pct(b.CPI[bk], b.Cycles))
		}
	}
	fmt.Printf("(top loss %s)\n", sim.TopLoss(b))

	switch c := out.Core.(type) {
	case *core.Core:
		s := c.Stats()
		fmt.Printf("checkpoints   %d taken, %d commits, %d rollbacks (branch %d, jalr %d, ssb %d, scout %d)\n",
			s.CheckpointsTaken, s.EpochCommits, s.Rollbacks,
			s.RollbacksBy[core.RbBranch], s.RollbacksBy[core.RbJalr],
			s.RollbacksBy[core.RbSSB], s.RollbacksBy[core.RbScout])
		fmt.Printf("deferred      %d insts (%d branches, %.2f%% mispred), %d replays\n",
			s.Deferrals, s.DeferredBranches,
			stats.Pct(s.DeferredBranchMispred, s.DeferredBranches), s.Replays)
		fmt.Printf("discarded     %d insts (%.2f%% of work)\n",
			s.DiscardedInsts, stats.Pct(s.DiscardedInsts, s.DiscardedInsts+s.Retired))
		fmt.Printf("occupancy     DQ mean %.1f max %d | SSB mean %.1f | ckpts mean %.1f\n",
			s.DQOcc.Mean(), s.DQOcc.Max(), s.SSBOcc.Mean(), s.CkptOcc.Mean())
		fmt.Printf("cycle modes   ")
		for k := core.CycleKind(0); k < core.NumCycleKinds; k++ {
			fmt.Printf("%s %.1f%%  ", k, stats.Pct(s.ModeCycles[k], s.Cycles))
		}
		fmt.Println()
		fmt.Printf("stall cycles  dq-full %d, ssb-full %d, atomic %d\n",
			s.DQFullStallCycles, s.SSBFullStallCycles, s.AtomicStallCycles)
	case *ooo.Core:
		s := c.Stats()
		fmt.Printf("squashes      %d (memorder %d), wrong-path insts %d\n",
			s.Squashes, s.MemOrderViolations, s.WrongPathInsts)
		fmt.Printf("rob-full      %d cycles, fetch-stall %d cycles\n", s.ROBFullCycles, s.FetchStallCycles)
	case *inorder.Core:
		s := c.Stats()
		fmt.Printf("stall cycles  fetch %d, redirect %d, data %d, load-limit %d, store-buffer %d\n",
			s.StallCycles[inorder.StallFetch], s.StallCycles[inorder.StallRedirect],
			s.StallCycles[inorder.StallData], s.StallCycles[inorder.StallLoadLimit],
			s.StallCycles[inorder.StallStoreBuffer])
	}
	fmt.Println()
}

// parseFaults parses the -faults flag: either a literal plan string
// (faults.Parse syntax) or "random:SEED" for a generated benign plan.
func parseFaults(s string) (*faults.Plan, error) {
	if rest, ok := strings.CutPrefix(s, "random:"); ok {
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -faults random seed %q: %v", rest, err)
		}
		// A modest horizon keeps the generated events inside the span a
		// typical run actually executes.
		return faults.Random(seed, 1_000_000), nil
	}
	return faults.Parse(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sstsim:", err)
	os.Exit(1)
}
