// Command rkasm assembles RK64 source into a listing (disassembly plus
// segment map), primarily for inspecting what the toolchain produces.
//
// Usage:
//
//	rkasm prog.s
package main

import (
	"fmt"
	"os"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: rkasm <file.s>")
		os.Exit(2)
	}
	src, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entry %#x\n", prog.Entry)
	for _, seg := range prog.Segments {
		fmt.Printf("segment %#x..%#x (%d bytes)\n", seg.Addr, seg.Addr+uint64(len(seg.Data)), len(seg.Data))
	}
	for _, sec := range prog.Secrets {
		fmt.Printf("secret  %#x..%#x (%d bytes)\n", sec.Addr, sec.Addr+uint64(sec.Len), sec.Len)
	}
	// Disassemble the segment containing the entry point.
	for _, seg := range prog.Segments {
		if prog.Entry < seg.Addr || prog.Entry >= seg.Addr+uint64(len(seg.Data)) {
			continue
		}
		for off := 0; off+isa.InstSize <= len(seg.Data); off += isa.InstSize {
			in, err := isa.Decode(seg.Data[off:])
			if err != nil {
				break
			}
			fmt.Printf("%#8x:  %v\n", seg.Addr+uint64(off), in)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rkasm:", err)
	os.Exit(1)
}
