// Command rkrun executes an RK64 program on the golden functional
// emulator — no timing, just architecture. It can capture an execution
// trace and print a workload characterization summary.
//
// Usage:
//
//	rkrun prog.s
//	rkrun -trace out.rktr -summary prog.s
//	rkrun -workload oltp -summary        # trace a built-in workload
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/trace"
	"rocksim/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "write an execution trace to this file")
	summary := flag.Bool("summary", false, "print a trace summary (instruction mix, footprint)")
	wl := flag.String("workload", "", "run a built-in workload instead of a source file")
	maxInsts := flag.Uint64("max", 500_000_000, "instruction budget")
	flag.Parse()

	var prog *asm.Program
	switch {
	case *wl != "":
		w, err := workload.Build(*wl, workload.ScaleTest)
		if err != nil {
			fatal(err)
		}
		prog = w.Program
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: rkrun [-trace f] [-summary] (<file.s> | -workload name)")
		os.Exit(2)
	}

	m := mem.NewSparse()
	prog.Load(m)
	emu := isa.NewEmulator(prog.Entry, m)

	var buf bytes.Buffer
	var col *trace.Collector
	if *traceFile != "" || *summary {
		tw, err := trace.NewWriter(&buf)
		if err != nil {
			fatal(err)
		}
		col = &trace.Collector{W: tw, Emu: emu}
		emu.Hook = col.Hook()
	}

	if err := emu.Run(*maxInsts); err != nil {
		fatal(err)
	}
	fmt.Printf("executed %d instructions, final pc %#x\n", emu.Executed, emu.PC)
	for r := 1; r < isa.NumRegs; r++ {
		if emu.Reg[r] != 0 {
			fmt.Printf("  r%-2d = %#x (%d)\n", r, uint64(emu.Reg[r]), emu.Reg[r])
		}
	}

	if col != nil {
		if col.Err != nil {
			fatal(col.Err)
		}
		if err := col.W.Flush(); err != nil {
			fatal(err)
		}
		if *traceFile != "" {
			if err := os.WriteFile(*traceFile, buf.Bytes(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace: %d records -> %s\n", col.W.Count(), *traceFile)
		}
		if *summary {
			tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				fatal(err)
			}
			s, err := trace.Summarize(tr)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("mix: %.1f%% loads, %.1f%% stores, %.1f%% branches, %d atomics, %d long ops\n",
				s.LoadPct(), s.StorePct(), s.BranchPct(), s.Atomics, s.LongOps)
			fmt.Printf("data footprint: %d lines (%.1f KiB)\n", s.TouchedLines, float64(s.TouchedLines)*64/1024)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rkrun:", err)
	os.Exit(1)
}
