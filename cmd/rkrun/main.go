// Command rkrun executes an RK64 program on the golden functional
// emulator — no timing, just architecture. It can capture an execution
// trace and print a workload characterization summary.
//
// Usage:
//
//	rkrun prog.s
//	rkrun -trace out.rktr -summary prog.s
//	rkrun -workload oltp -summary        # trace a built-in workload
//	rkrun -workload oltp -metrics m.json # machine-readable counters
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
	"rocksim/internal/trace"
	"rocksim/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "write an execution trace to this file")
	summary := flag.Bool("summary", false, "print a trace summary (instruction mix, footprint)")
	wl := flag.String("workload", "", "run a built-in workload instead of a source file")
	maxInsts := flag.Uint64("max", 500_000_000, "instruction budget")
	metricsOut := flag.String("metrics", "", "write emulator counters and trace summary as flat JSON ('-' = stdout)")
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace_event JSON with instruction-mix counter tracks (ts = instruction index)")
	sampleEvery := flag.Uint64("sample-every", obs.DefaultSampleEvery, "instructions between counter samples in the Chrome trace")
	flag.Parse()

	var prog *asm.Program
	switch {
	case *wl != "":
		w, err := workload.Build(*wl, workload.ScaleTest)
		if err != nil {
			fatal(err)
		}
		prog = w.Program
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: rkrun [-trace f] [-summary] (<file.s> | -workload name)")
		os.Exit(2)
	}

	m := mem.NewSparse()
	prog.Load(m)
	emu := isa.NewEmulator(prog.Entry, m)

	var buf bytes.Buffer
	var col *trace.Collector
	if *traceFile != "" || *summary || *metricsOut != "" {
		tw, err := trace.NewWriter(&buf)
		if err != nil {
			fatal(err)
		}
		col = &trace.Collector{W: tw, Emu: emu}
		emu.Hook = col.Hook()
	}

	// The Chrome trace of a functional run has no cycles; it exports the
	// running instruction mix as counter tracks over instruction index.
	var ctr *obs.Trace
	if *chromeOut != "" {
		ctr = obs.NewTrace()
		every := *sampleEvery
		if every < 1 {
			every = 1
		}
		var next uint64
		var loads, stores, branches uint64
		inner := emu.Hook
		emu.Hook = func(pc uint64, in isa.Inst) {
			if inner != nil {
				inner(pc, in)
			}
			switch {
			case in.Op.IsLoad():
				loads++
			case in.Op.IsStore():
				stores++
			case in.Op.Class() == isa.ClassBranch:
				branches++
			}
			if emu.Executed >= next {
				next = emu.Executed + every
				ctr.CounterSample(emu.Executed, "emu/loads", int64(loads))
				ctr.CounterSample(emu.Executed, "emu/stores", int64(stores))
				ctr.CounterSample(emu.Executed, "emu/branches", int64(branches))
			}
		}
	}

	if err := emu.Run(*maxInsts); err != nil {
		fatal(err)
	}
	fmt.Printf("executed %d instructions, final pc %#x\n", emu.Executed, emu.PC)
	for r := 1; r < isa.NumRegs; r++ {
		if emu.Reg[r] != 0 {
			fmt.Printf("  r%-2d = %#x (%d)\n", r, uint64(emu.Reg[r]), emu.Reg[r])
		}
	}

	if col != nil {
		if col.Err != nil {
			fatal(col.Err)
		}
		if err := col.W.Flush(); err != nil {
			fatal(err)
		}
		if *traceFile != "" {
			if err := os.WriteFile(*traceFile, buf.Bytes(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace: %d records -> %s\n", col.W.Count(), *traceFile)
		}
		if *summary || *metricsOut != "" {
			tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				fatal(err)
			}
			s, err := trace.Summarize(tr)
			if err != nil {
				fatal(err)
			}
			if *summary {
				fmt.Printf("mix: %.1f%% loads, %.1f%% stores, %.1f%% branches, %d atomics, %d long ops\n",
					s.LoadPct(), s.StorePct(), s.BranchPct(), s.Atomics, s.LongOps)
				fmt.Printf("data footprint: %d lines (%.1f KiB)\n", s.TouchedLines, float64(s.TouchedLines)*64/1024)
			}
			if *metricsOut != "" {
				writeMetrics(*metricsOut, emu, s)
			}
		}
	}

	if ctr != nil {
		f := create(*chromeOut)
		if err := ctr.WriteChrome(f); err != nil {
			fatal(err)
		}
		closeOut(f)
	}
}

// writeMetrics publishes the emulator's counters and the trace summary
// into a registry and writes it as flat JSON.
func writeMetrics(path string, emu *isa.Emulator, s trace.Summary) {
	r := obs.NewRegistry()
	r.Counter("emu/executed").Set(emu.Executed)
	r.Counter("emu/insts").Set(s.Insts)
	r.Counter("emu/loads").Set(s.Loads)
	r.Counter("emu/stores").Set(s.Stores)
	r.Counter("emu/branches").Set(s.Branches)
	r.Counter("emu/atomics").Set(s.Atomics)
	r.Counter("emu/long_ops").Set(s.LongOps)
	r.Counter("emu/touched_lines").Set(s.TouchedLines)
	f := create(path)
	if err := r.WriteJSON(f); err != nil {
		fatal(err)
	}
	closeOut(f)
}

func create(path string) *os.File {
	if path == "-" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func closeOut(f *os.File) {
	if f != os.Stdout {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rkrun:", err)
	os.Exit(1)
}
