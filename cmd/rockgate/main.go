// Command rockgate routes simulation traffic across a fleet of
// rocksimd shards (see docs/SERVICE.md): a stateless gateway serving
// the same API as a single daemon — byte-identical responses — while
// placing every cell on its owning shard via a consistent-hash ring
// over the content-addressed cell key, so a popular cell is computed
// once per fleet.
//
// Usage:
//
//	rockgate -shards http://127.0.0.1:8321,http://127.0.0.1:8322
//	rockgate -addr :8420 -shard-concurrency 8 -probe-interval 2s
//
// Shard health is probed at start, on an interval, and on the request
// path: a dead or draining shard is ejected (its keys re-home to ring
// successors) and re-probed until it recovers. When every shard is
// saturated the gateway answers 429 with the largest Retry-After any
// shard hinted. SIGTERM/SIGINT drain exactly like rocksimd: new work
// refused with 503, admitted work finishes, exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rocksim/internal/faults"
	"rocksim/internal/gate"
	"rocksim/internal/serve"
	"rocksim/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8420", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required), e.g. http://127.0.0.1:8321,http://127.0.0.1:8322")
	perShard := flag.Int("shard-concurrency", 8, "max concurrent requests per shard (also sizes the per-shard connection pool)")
	jobs := flag.Int("j", 0, "max cells in flight per grid across the fleet (0 = shard-concurrency x shards)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0 = default)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "gateway admission bound before 429")
	retryAfter := flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint on gateway 429 responses")
	busyAttempts := flag.Int("busy-attempts", gate.DefaultBusyAttempts, "per-cell waits on a shard 429 before trying a successor")
	busyWait := flag.Duration("busy-wait", gate.DefaultBusyWait, "cap on the per-attempt Retry-After sleep")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "shard health re-probe interval")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog applied to every grid cell (0 = none)")
	faultSpec := flag.String("faults", "", "fault plan applied to every grid cell (faults grammar, or random:SEED)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Minute, "drain deadline for open connections after SIGTERM")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "rockgate: bad -log-level:", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	targets := splitTargets(*shards)
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "rockgate: -shards is required")
		os.Exit(2)
	}

	base := sim.DefaultOptions()
	if *timeout > 0 {
		base.Timeout = *timeout
	}
	if *faultSpec != "" {
		plan, err := parseFaults(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rockgate: bad -faults:", err)
			os.Exit(2)
		}
		base.Faults = plan
	}

	g, err := gate.New(gate.Config{
		Targets:      targets,
		PerShard:     *perShard,
		Jobs:         *jobs,
		VNodes:       *vnodes,
		QueueDepth:   *queue,
		RetryAfter:   *retryAfter,
		BusyAttempts: *busyAttempts,
		BusyWait:     *busyWait,
		BaseOptions:  &base,
		Logger:       log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockgate:", err)
		os.Exit(1)
	}
	defer g.Close()
	g.Fleet().Monitor().Start(*probeInterval)
	hs := &http.Server{Addr: *addr, Handler: g}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Info("signal received; draining")
		g.StartDrain()
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Error("shutdown", "err", err)
		}
	}()

	log.Info("listening", "addr", *addr, "shards", len(targets), "per_shard", *perShard)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rockgate:", err)
		os.Exit(1)
	}
	// Listener closed; wait for admitted work so a drain never abandons
	// a fan-out mid-grid.
	g.Wait()
	log.Info("drained cleanly")
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimSpace(t)
		if t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	return out
}

// parseFaults accepts the same forms as the rocksimd/sstsim -faults
// flag.
func parseFaults(spec string) (*faults.Plan, error) {
	if rest, ok := strings.CutPrefix(spec, "random:"); ok {
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random faults seed %q: %v", rest, err)
		}
		return faults.Random(seed, 1_000_000), nil
	}
	return faults.Parse(spec)
}
