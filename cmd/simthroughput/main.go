// Command simthroughput measures the simulator's own speed — simulated
// cycles per wall-clock second and heap allocations per simulated run —
// for every core model, on the OLTP workload at test scale (the same
// configuration as the BenchmarkSim* benchmarks).
//
// Usage:
//
//	simthroughput -o BENCH_simthroughput.json   # write a fresh baseline
//	simthroughput -check BENCH_simthroughput.json
//
// In -check mode the current machine is re-measured and compared against
// the recorded baseline: a kind that runs at less than 80% of its
// recorded simcycles/s, or allocates more than 120% of its recorded
// allocs/op, fails the guard. A missing baseline file is a skip, not a
// failure, because the numbers are machine-specific — regenerate with
// `make bench` on the machine that runs the guard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// kindMetrics is one core model's measurement.
type kindMetrics struct {
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	SimInstsPerSec  float64 `json:"siminsts_per_sec"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
}

type report struct {
	Workload string                 `json:"workload"`
	Scale    string                 `json:"scale"`
	Kinds    map[string]kindMetrics `json:"kinds"`
}

func measureAll() (report, error) {
	w, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		return report{}, err
	}
	rep := report{Workload: "oltp", Scale: "test", Kinds: map[string]kindMetrics{}}
	opts := sim.DefaultOptions()
	for _, k := range sim.Kinds {
		k := k
		var cycles, insts uint64
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			cycles, insts = 0, 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := sim.Run(k, w.Program, opts)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				cycles += out.Cycles
				insts += out.Retired
			}
		})
		if benchErr != nil {
			return report{}, fmt.Errorf("%v: %w", k, benchErr)
		}
		secs := r.T.Seconds()
		if secs <= 0 || r.N == 0 {
			return report{}, fmt.Errorf("%v: empty benchmark result", k)
		}
		rep.Kinds[k.String()] = kindMetrics{
			SimCyclesPerSec: float64(cycles) / secs,
			SimInstsPerSec:  float64(insts) / secs,
			AllocsPerOp:     float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:      float64(r.MemBytes) / float64(r.N),
		}
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "write measurements as JSON to this file ('-' = stdout)")
	check := flag.String("check", "", "compare a fresh measurement against this baseline JSON (±20%); missing file = skip")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "simthroughput: exactly one of -o or -check is required")
		os.Exit(2)
	}

	if *check != "" {
		base, err := os.ReadFile(*check)
		if os.IsNotExist(err) {
			fmt.Printf("simthroughput: no baseline at %s; skipping guard (run `make bench` to record one)\n", *check)
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simthroughput:", err)
			os.Exit(1)
		}
		var want report
		if err := json.Unmarshal(base, &want); err != nil {
			fmt.Fprintf(os.Stderr, "simthroughput: bad baseline %s: %v\n", *check, err)
			os.Exit(1)
		}
		got, err := measureAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simthroughput:", err)
			os.Exit(1)
		}
		failed := false
		for kind, w := range want.Kinds {
			g, ok := got.Kinds[kind]
			if !ok {
				fmt.Printf("FAIL %-10s missing from current measurement\n", kind)
				failed = true
				continue
			}
			switch {
			case g.SimCyclesPerSec < 0.8*w.SimCyclesPerSec:
				fmt.Printf("FAIL %-10s simcycles/s %.0f < 80%% of baseline %.0f\n", kind, g.SimCyclesPerSec, w.SimCyclesPerSec)
				failed = true
			case g.AllocsPerOp > 1.2*w.AllocsPerOp+1:
				fmt.Printf("FAIL %-10s allocs/op %.0f > 120%% of baseline %.0f\n", kind, g.AllocsPerOp, w.AllocsPerOp)
				failed = true
			default:
				fmt.Printf("ok   %-10s %.2fM simcycles/s (baseline %.2fM), %.0f allocs/op\n",
					kind, g.SimCyclesPerSec/1e6, w.SimCyclesPerSec/1e6, g.AllocsPerOp)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	rep, err := measureAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	for kind, m := range rep.Kinds {
		fmt.Printf("%-10s %.2fM simcycles/s, %.0f allocs/op\n", kind, m.SimCyclesPerSec/1e6, m.AllocsPerOp)
	}
}
