// Command simthroughput measures the simulator's own speed — simulated
// cycles per wall-clock second and heap allocations per simulated run —
// for every core model, on the OLTP workload at test scale (the same
// configuration as the BenchmarkSim* benchmarks).
//
// Usage:
//
//	simthroughput -o BENCH_simthroughput.json   # write a fresh baseline
//	simthroughput -check BENCH_simthroughput.json
//
// In -check mode the current machine is re-measured and compared against
// the recorded baseline: a kind that runs at less than 80% of its
// recorded simcycles/s, or allocates more than 120% of its recorded
// allocs/op, fails the guard. A missing baseline file is a skip, not a
// failure, because the numbers are machine-specific — regenerate with
// `make bench` on the machine that runs the guard.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// kindMetrics is one core model's measurement.
type kindMetrics struct {
	SimCyclesPerSec float64 `json:"simcycles_per_sec"`
	SimInstsPerSec  float64 `json:"siminsts_per_sec"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	// The pooled short-program mode measures service-shaped traffic:
	// back-to-back runs on ONE reused sim.Instance, driven directly
	// (bypassing the experiments run cache, which would trivially answer
	// repeats from memory). This is where per-run construction cost
	// shows up as allocations, so the guard holds PooledAllocsPerOp to
	// an absolute ceiling (maxPooledAllocs), not just a relative one.
	// Old baselines without these keys read as 0 and skip the relative
	// runs/s comparison.
	PooledRunsPerSec  float64 `json:"pooled_runs_per_sec"`
	PooledAllocsPerOp float64 `json:"pooled_allocs_per_op"`
}

// maxPooledAllocs is the absolute allocs-per-run ceiling for a pooled
// instance: a reset-and-rerun costs a detached stats snapshot and some
// bookkeeping, tens of allocations — not the ~8-9k of a full machine
// construction. Exceeding this means someone re-grew a per-run
// allocation, independent of what the recorded baseline says.
const maxPooledAllocs = 100

type report struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale"`
	// PooledWorkload names the program the pooled short-program mode
	// runs (shortProgram below), distinct from the main workload: short
	// runs are where per-run setup cost dominates, so that is where
	// runs/s measures the pool rather than the simulator core loop.
	PooledWorkload string                 `json:"pooled_workload"`
	Kinds          map[string]kindMetrics `json:"kinds"`
}

// shortProgram is the service-shaped cell for the pooled mode: a few
// hundred instructions touching a small table, finishing in a couple of
// thousand simulated cycles. On a program this size a fresh ~8.6k-
// allocation machine construction costs more than the simulation
// itself; the pooled runs/s number exists to keep that overhead dead.
const shortProgram = `
	li   r5, 0
	li   r6, 0
	li   r7, 64
	li   r8, 0x200000
loop:	ld64 r9, (r8)
	add  r5, r5, r9
	addi r8, r8, 8
	addi r6, r6, 1
	bne  r6, r7, loop
	halt
	.data 0x200000
tbl:	.quad 3, 1, 4, 1, 5, 9, 2, 6
	.zero 448
`

func measureAll() (report, error) {
	w, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		return report{}, err
	}
	short, err := asm.Assemble(shortProgram)
	if err != nil {
		return report{}, fmt.Errorf("short program: %w", err)
	}
	rep := report{Workload: "oltp", Scale: "test", PooledWorkload: "short-sum", Kinds: map[string]kindMetrics{}}
	opts := sim.DefaultOptions()
	for _, k := range sim.Kinds {
		k := k
		var cycles, insts uint64
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			cycles, insts = 0, 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := sim.Run(k, w.Program, opts)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				cycles += out.Cycles
				insts += out.Retired
			}
		})
		if benchErr != nil {
			return report{}, fmt.Errorf("%v: %w", k, benchErr)
		}
		secs := r.T.Seconds()
		if secs <= 0 || r.N == 0 {
			return report{}, fmt.Errorf("%v: empty benchmark result", k)
		}
		m := kindMetrics{
			SimCyclesPerSec: float64(cycles) / secs,
			SimInstsPerSec:  float64(insts) / secs,
			AllocsPerOp:     float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:      float64(r.MemBytes) / float64(r.N),
		}
		m.PooledRunsPerSec, m.PooledAllocsPerOp, err = measurePooled(k, short, opts)
		if err != nil {
			return report{}, fmt.Errorf("%v pooled: %w", k, err)
		}
		rep.Kinds[k.String()] = m
	}
	return rep, nil
}

// measurePooled is the short-program runs/s mode: one sim.Instance,
// reset and rerun back to back. The first run (the construction plus a
// cold warm-up) happens before the benchmark loop so the steady-state
// reuse cost is what gets measured.
func measurePooled(k sim.Kind, prog *asm.Program, opts sim.Options) (runsPerSec, allocsPerOp float64, err error) {
	in, err := sim.NewInstance(k, opts)
	if err != nil {
		return 0, 0, err
	}
	if _, err := in.Run(context.Background(), prog, opts); err != nil {
		return 0, 0, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := in.Run(context.Background(), prog, opts); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return 0, 0, benchErr
	}
	secs := r.T.Seconds()
	if secs <= 0 || r.N == 0 {
		return 0, 0, fmt.Errorf("empty benchmark result")
	}
	return float64(r.N) / secs, float64(r.MemAllocs) / float64(r.N), nil
}

func main() {
	out := flag.String("o", "", "write measurements as JSON to this file ('-' = stdout)")
	check := flag.String("check", "", "compare a fresh measurement against this baseline JSON (±20%); missing file = skip")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "simthroughput: exactly one of -o or -check is required")
		os.Exit(2)
	}

	if *check != "" {
		base, err := os.ReadFile(*check)
		if os.IsNotExist(err) {
			fmt.Printf("simthroughput: no baseline at %s; skipping guard (run `make bench` to record one)\n", *check)
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simthroughput:", err)
			os.Exit(1)
		}
		var want report
		if err := json.Unmarshal(base, &want); err != nil {
			fmt.Fprintf(os.Stderr, "simthroughput: bad baseline %s: %v\n", *check, err)
			os.Exit(1)
		}
		got, err := measureAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simthroughput:", err)
			os.Exit(1)
		}
		failed := false
		for kind, w := range want.Kinds {
			g, ok := got.Kinds[kind]
			if !ok {
				fmt.Printf("FAIL %-10s missing from current measurement\n", kind)
				failed = true
				continue
			}
			switch {
			case g.SimCyclesPerSec < 0.8*w.SimCyclesPerSec:
				fmt.Printf("FAIL %-10s simcycles/s %.0f < 80%% of baseline %.0f\n", kind, g.SimCyclesPerSec, w.SimCyclesPerSec)
				failed = true
			case g.AllocsPerOp > 1.2*w.AllocsPerOp+1:
				fmt.Printf("FAIL %-10s allocs/op %.0f > 120%% of baseline %.0f\n", kind, g.AllocsPerOp, w.AllocsPerOp)
				failed = true
			case g.PooledAllocsPerOp > maxPooledAllocs:
				fmt.Printf("FAIL %-10s pooled allocs/op %.0f > absolute ceiling %d\n", kind, g.PooledAllocsPerOp, maxPooledAllocs)
				failed = true
			case w.PooledRunsPerSec > 0 && g.PooledRunsPerSec < 0.8*w.PooledRunsPerSec:
				fmt.Printf("FAIL %-10s pooled runs/s %.0f < 80%% of baseline %.0f\n", kind, g.PooledRunsPerSec, w.PooledRunsPerSec)
				failed = true
			default:
				fmt.Printf("ok   %-10s %.2fM simcycles/s (baseline %.2fM), %.0f allocs/op, pooled %.0f runs/s at %.0f allocs/op\n",
					kind, g.SimCyclesPerSec/1e6, w.SimCyclesPerSec/1e6, g.AllocsPerOp, g.PooledRunsPerSec, g.PooledAllocsPerOp)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	rep, err := measureAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simthroughput:", err)
		os.Exit(1)
	}
	for kind, m := range rep.Kinds {
		fmt.Printf("%-10s %.2fM simcycles/s, %.0f allocs/op, pooled %.0f runs/s at %.0f allocs/op\n",
			kind, m.SimCyclesPerSec/1e6, m.AllocsPerOp, m.PooledRunsPerSec, m.PooledAllocsPerOp)
	}
}
